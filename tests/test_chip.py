"""Unit tests for chip-level allocation and pipelining."""

import pytest

from repro import ChipConfig, ConvLayer, CostParams, PIMArray, cost_report
from repro.chip import (
    ChipLattice,
    InsufficientArraysError,
    allocate_layer,
    chip_lattice,
    plan_pipeline,
    residency_arrays,
)
from repro.networks import resnet18, vgg13
from repro.search import solve


@pytest.fixture(scope="module")
def conv4_solution():
    # 72 PW positions x 7 AR x 1 AC tiles.
    return solve(ConvLayer.square(14, 3, 256, 256), PIMArray.square(512),
                 "vw-sdk")


class TestChipConfig:
    def test_total_cells(self):
        chip = ChipConfig(PIMArray.square(512), 4)
        assert chip.total_cells == 4 * 512 * 512

    def test_positive_count_required(self):
        with pytest.raises(Exception):
            ChipConfig(PIMArray.square(512), 0)

    def test_str(self):
        assert str(ChipConfig(PIMArray(512, 256), 8)) == "8x(512x256)"


class TestLayerAllocation:
    def test_residency_minimum(self, conv4_solution):
        assert residency_arrays(conv4_solution) == 7

    def test_resident_latency_is_npw(self, conv4_solution):
        alloc = allocate_layer(conv4_solution, 7)
        assert alloc.resident
        assert alloc.latency_cycles == 72
        assert alloc.reprogram_events == 0

    def test_replication_halves_latency(self, conv4_solution):
        alloc = allocate_layer(conv4_solution, 14)
        assert alloc.replicas == 2
        assert alloc.latency_cycles == 36

    def test_partial_extra_arrays_do_not_help(self, conv4_solution):
        # 13 arrays = 1 full replica + 6 spare: latency unchanged.
        alloc = allocate_layer(conv4_solution, 13)
        assert alloc.replicas == 1
        assert alloc.latency_cycles == 72

    def test_non_resident_multiplexing(self, conv4_solution):
        alloc = allocate_layer(conv4_solution, 2)
        assert not alloc.resident
        assert alloc.latency_cycles == 72 * 4   # ceil(7/2) rounds
        assert alloc.reprogram_events == 7

    def test_single_array_matches_paper_model(self, conv4_solution):
        # One array, time-multiplexed: exactly the paper's 504 cycles.
        alloc = allocate_layer(conv4_solution, 1)
        assert alloc.latency_cycles == conv4_solution.cycles

    def test_utilized_arrays(self, conv4_solution):
        assert allocate_layer(conv4_solution, 15).utilized_arrays == 14


class TestPipeline:
    def test_resnet_on_64_arrays(self):
        chip = ChipConfig(PIMArray.square(512), 64)
        plan = plan_pipeline(resnet18(), chip, "vw-sdk")
        assert plan.arrays_used <= 64
        assert plan.bottleneck_cycles <= 1431   # at worst stage 1 resident
        assert len(plan.allocations) == 5

    def test_insufficient_arrays_raises(self):
        chip = ChipConfig(PIMArray.square(512), 4)
        with pytest.raises(InsufficientArraysError):
            plan_pipeline(vgg13(), chip, "im2col")

    def test_vw_beats_im2col_at_chip_level(self):
        chip = ChipConfig(PIMArray.square(512), 64)
        vw = plan_pipeline(resnet18(), chip, "vw-sdk")
        im = plan_pipeline(resnet18(), chip, "im2col")
        assert vw.speedup_over(im) > 1.0

    def test_more_arrays_never_slower(self):
        for count in (40, 64, 128, 256):
            chip_small = ChipConfig(PIMArray.square(512), count)
            chip_big = ChipConfig(PIMArray.square(512), count * 2)
            small = plan_pipeline(resnet18(), chip_small).bottleneck_cycles
            big = plan_pipeline(resnet18(), chip_big).bottleneck_cycles
            assert big <= small

    def test_greedy_matches_bruteforce_small(self):
        # Two-layer toy network: check the greedy min-max is optimal.
        from itertools import product
        from repro.networks import Network
        net = Network.from_layers("toy", [
            ConvLayer.square(10, 3, 12, 8),
            ConvLayer.square(8, 3, 16, 8),
        ])
        array = PIMArray(64, 32)
        budget = 9
        plan = plan_pipeline(net, ChipConfig(array, budget))
        sols = [solve(layer, array, "vw-sdk") for layer in net]
        mins = [residency_arrays(s) for s in sols]
        best = None
        for a0, a1 in product(range(mins[0], budget + 1),
                              range(mins[1], budget + 1)):
            if a0 + a1 > budget:
                continue
            lat = max(allocate_layer(sols[0], a0).latency_cycles,
                      allocate_layer(sols[1], a1).latency_cycles)
            best = lat if best is None else min(best, lat)
        assert plan.bottleneck_cycles == best

    def test_fill_latency_at_least_bottleneck(self):
        chip = ChipConfig(PIMArray.square(512), 64)
        plan = plan_pipeline(resnet18(), chip)
        assert plan.fill_latency_cycles >= plan.bottleneck_cycles

    def test_rows_report(self):
        chip = ChipConfig(PIMArray.square(512), 64)
        rows = plan_pipeline(resnet18(), chip).rows()
        assert len(rows) == 5
        assert all(r["arrays"] >= r["tiles"] for r in rows)

    def test_repeats_raise_bottleneck(self):
        # A repeated block must hold `repeats` weight copies, so each
        # stage copy gets fewer replicas and the bottleneck grows.
        from repro.networks import Network
        single = Network.from_layers("s", [ConvLayer.square(10, 3, 12, 8)])
        repeated = Network.from_layers(
            "r", [ConvLayer.square(10, 3, 12, 8, repeats=3)])
        array = PIMArray(64, 32)
        chip = ChipConfig(array, 30)
        assert (plan_pipeline(repeated, chip).bottleneck_cycles
                >= plan_pipeline(single, chip).bottleneck_cycles)
        # And the replication step honours the repeat multiplier: the
        # per-stage arrays stay divisible by the tile count.
        plan = plan_pipeline(repeated, chip)
        alloc = plan.allocations[0]
        assert alloc.arrays % 3 == 0        # tiles = 3
        assert plan.arrays_used == alloc.arrays * 3  # repeats = 3

    def test_throughput_metric(self):
        chip = ChipConfig(PIMArray.square(512), 64)
        plan = plan_pipeline(resnet18(), chip)
        assert plan.throughput_per_kcycle == pytest.approx(
            1000 / plan.bottleneck_cycles)


ARRAY = PIMArray.square(512)


class TestChipLattice:
    @pytest.fixture(scope="class")
    def lattice(self):
        return ChipLattice.for_network(resnet18(), ARRAY)

    def test_floor_matches_residency_minimum(self, lattice):
        sols = [solve(layer, ARRAY, "vw-sdk") for layer in resnet18()]
        floor = sum(residency_arrays(s) * s.layer.repeats for s in sols)
        assert lattice.floor_arrays == floor

    def test_outcome_matches_greedy(self, lattice):
        for count in (23, 24, 31, 64, 100, 1000, 1 << 16):
            plan = plan_pipeline(resnet18(), ChipConfig(ARRAY, count))
            point = lattice.outcome(count)
            assert point.bottleneck_cycles == plan.bottleneck_cycles
            assert point.fill_latency_cycles == plan.fill_latency_cycles
            assert point.arrays_used == plan.arrays_used

    def test_sweep_matches_scalar_path(self, lattice):
        counts = list(range(1, 200, 7)) + [1 << 12]
        sweep = lattice.sweep(counts)
        for index, count in enumerate(counts):
            assert sweep.outcome(index) == lattice.outcome(count)

    def test_infeasible_below_floor(self, lattice):
        assert lattice.outcome(lattice.floor_arrays - 1) is None
        assert lattice.bottleneck_at(1) is None
        sweep = lattice.sweep([lattice.floor_arrays - 1])
        assert not sweep.feasible[0]
        assert sweep.outcome(0) is None
        assert sweep.rows()[0]["bottleneck"] == "-"

    def test_saturated_budget_reaches_latency_one(self, lattice):
        # With effectively unlimited arrays every stage replicates
        # until one parallel-window position per stage remains.
        point = lattice.outcome(1 << 20)
        assert point.bottleneck_cycles == 1
        assert point.fill_latency_cycles == lattice.num_stages

    def test_arrays_used_never_exceeds_budget(self, lattice):
        sweep = lattice.sweep(range(23, 400))
        assert (sweep.arrays_used <= sweep.num_arrays).all()

    def test_sweep_len_and_rows(self, lattice):
        sweep = lattice.sweep([32, 64])
        assert len(sweep) == 2
        rows = sweep.rows()
        assert rows[0]["arrays"] == 32
        assert rows[1]["used"] <= 64

    def test_outcome_throughput(self, lattice):
        point = lattice.outcome(64)
        assert point.throughput_per_kcycle == pytest.approx(
            1000 / point.bottleneck_cycles)

    def test_for_solutions_alias(self):
        sols = [solve(layer, ARRAY, "vw-sdk") for layer in resnet18()]
        assert (chip_lattice(sols).floor_arrays
                == ChipLattice.for_solutions(sols).floor_arrays)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ChipLattice.for_solutions([])

    def test_single_layer_network(self):
        net = [ConvLayer.square(14, 3, 256, 256)]
        lat = ChipLattice.for_network(net, ARRAY)
        sol = solve(net[0], ARRAY, "vw-sdk")
        # 7 tiles, 72 positions: 14 arrays -> 2 replicas -> 36 cycles.
        assert lat.outcome(14).bottleneck_cycles == 36
        assert lat.outcome(7).bottleneck_cycles == sol.breakdown.n_pw


class TestCostedChipLattice:
    """Energy/area accounting on top of the staircase replay."""

    PARAMS = CostParams(cycle_time_ns=50.0, adc_energy_pj=1.0)

    @pytest.fixture(scope="class")
    def lattice(self):
        return ChipLattice.for_network(resnet18(), ARRAY,
                                       cost_params=self.PARAMS)

    def test_uncosted_lattice_has_no_energy(self):
        lat = ChipLattice.for_network(resnet18(), ARRAY)
        assert lat.cost_params is None
        assert lat.total_energy_nj is None
        sweep = lat.sweep([64])
        assert sweep.energy_nj is None and sweep.latency_us is None
        point = sweep.outcome(0)
        assert point.energy_nj is None and point.latency_us is None
        assert point.cells_used > 0      # area accounting is always on

    def test_stage_energy_matches_scalar_cost_report(self, lattice):
        # Per-repeat terms are stored exactly as the scalar oracle
        # prices them; the total is their fsum with repeats expanded.
        import math as _math
        for sol, energy in zip(lattice.solutions,
                               lattice.stage_energy_nj.tolist()):
            report = cost_report(sol, self.PARAMS)
            assert energy == report.compute_energy_nj
        assert lattice.total_energy_nj == _math.fsum(
            cost_report(sol, self.PARAMS).compute_energy_nj
            for sol in lattice.solutions
            for _ in range(sol.layer.repeats))

    def test_energy_is_budget_independent(self, lattice):
        sweep = lattice.sweep([23, 64, 4096])
        assert sweep.energy_nj[0] == sweep.energy_nj[1] == \
            sweep.energy_nj[2] == lattice.total_energy_nj

    def test_latency_us_tracks_bottleneck(self, lattice):
        point = lattice.outcome(64)
        assert point.latency_us == \
            point.bottleneck_cycles * self.PARAMS.cycle_time_ns / 1000.0
        sweep = lattice.sweep([64])
        assert sweep.outcome(0) == point

    def test_cells_used_is_arrays_times_geometry(self, lattice):
        # Homogeneous lattice: every array has the same cell count.
        sweep = lattice.sweep([23, 64, 200])
        expected = sweep.arrays_used * ARRAY.cells
        assert (sweep.cells_used == expected).all()

    def test_infeasible_probes_carry_nan_and_zero(self, lattice):
        sweep = lattice.sweep([lattice.floor_arrays - 1])
        import math as _math
        assert _math.isnan(float(sweep.energy_nj[0]))
        assert _math.isnan(float(sweep.latency_us[0]))
        assert int(sweep.cells_used[0]) == 0
        assert sweep.rows()[0]["energy (nJ)"] == "-"

    def test_frontier_counts_start_at_floor_and_reach_one(self, lattice):
        counts = lattice.frontier_counts()
        assert int(counts[0]) == lattice.floor_arrays
        sweep = lattice.sweep(counts)
        assert bool(sweep.feasible.all())
        assert int(sweep.bottleneck_cycles[-1]) == 1
        # Every breakpoint budget is spent exactly.
        assert (sweep.arrays_used == sweep.num_arrays).all()

    def test_frontier_counts_cap(self, lattice):
        capped = lattice.frontier_counts(max_arrays=100)
        assert (capped <= 100).all()
        assert lattice.frontier_counts(max_arrays=1).size == 0


class TestEngineChipLattice:
    """Engine-side memoization of costed / heterogeneous lattices."""

    def test_cost_params_split_the_memo(self):
        from repro.api import MappingEngine
        engine = MappingEngine()
        plain = engine.chip_lattice(resnet18(), ARRAY)
        costed = engine.chip_lattice(resnet18(), ARRAY,
                                     cost_params=CostParams())
        assert plain is not costed
        assert plain is engine.chip_lattice(resnet18(), ARRAY)
        assert costed is engine.chip_lattice(resnet18(), ARRAY,
                                             cost_params=CostParams())

    def test_per_stage_arrays(self):
        from repro.api import MappingEngine
        engine = MappingEngine()
        net = resnet18()
        arrays = [ARRAY if i % 2 else PIMArray.square(256)
                  for i in range(len(net))]
        lattice = engine.chip_lattice(net, arrays)
        assert [s.array for s in lattice.solutions] == arrays
        assert lattice is engine.chip_lattice(net, tuple(arrays))

    def test_per_stage_arrays_length_mismatch(self):
        from repro.api import MappingEngine
        from repro.core import ConfigurationError
        with pytest.raises(ConfigurationError):
            MappingEngine().chip_lattice(resnet18(), [ARRAY, ARRAY])


class TestPools:
    def test_pool_normalised_and_deduplicated(self):
        from repro.chip import pool_plans
        pool = [ARRAY, PIMArray.square(128), ARRAY]
        plans = pool_plans(resnet18(), pool, include_mixed=False)
        assert [p.label for p in plans] == ["128x128", "512x512"]
        assert all(p.homogeneous for p in plans)

    def test_empty_pool_rejected(self):
        from repro.chip import pool_plans
        from repro.core import ConfigurationError
        with pytest.raises(ConfigurationError):
            pool_plans(resnet18(), [])
        with pytest.raises(ConfigurationError):
            pool_plans(resnet18(), ["512x512"])    # not PIMArray

    def test_best_fit_is_deterministic_per_shape(self):
        from repro.chip import best_fit_arrays
        pool = [PIMArray.square(128), ARRAY]
        assignment = best_fit_arrays(resnet18(), pool)
        assert len(assignment) == len(resnet18())
        # Identical layer shapes always land on identical geometries.
        by_shape = {}
        for layer, geometry in zip(resnet18(), assignment):
            key = (layer.ifm_h, layer.ifm_w, layer.kernel_h,
                   layer.kernel_w, layer.in_channels, layer.out_channels)
            assert by_shape.setdefault(key, geometry) == geometry

    def test_mixed_plan_only_when_it_differs(self):
        from repro.chip import pool_plans
        # One-geometry pool: best fit degenerates to the homogeneous
        # plan, so no mixed plan is emitted.
        plans = pool_plans(resnet18(), [ARRAY], include_mixed=True)
        assert [p.label for p in plans] == ["512x512"]
