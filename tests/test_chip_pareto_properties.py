"""Property tests pinning the chip frontier to the scalar oracles.

``chip_pareto`` prices whole deployment frontiers from batched
:class:`~repro.chip.sweep.ChipLattice` replays over closed-form
breakpoint budgets.  Three families of invariants keep it honest, over
randomized networks (strides, padding and block repeats included),
geometry pools and schemes:

* **dominance** — the heterogeneous-pool frontier (``pools=True``)
  dominates-or-equals the homogeneous one point for point, because the
  homogeneous plans are always in the candidate union;
* **oracle replay** — every frontier point is reproduced *bit-
  identically* by the scalar path: a ``plan_pipeline`` ``heapq`` greedy
  run at the point's array count plus per-stage
  :func:`~repro.core.cost.cost_report` pricing (``math.fsum``) must
  give the same bottleneck, arrays, cells, energy and latency;
* **canonicality** — the frontier is invariant to layer order and to
  whether repeated blocks are grouped (``repeats=r``) or unrolled into
  ``r`` stages, since breakpoint budgets and greedy outcomes at those
  budgets are closed-form in the per-stage staircases.
"""

import dataclasses
import math

import pytest

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chip import ChipConfig, plan_pipeline
from repro.core import ConvLayer, CostParams, PIMArray, cost_report
from repro.dse import InfeasibleTargetError, chip_pareto
from repro.networks import Network

layers = st.builds(
    ConvLayer.square,
    st.integers(min_value=4, max_value=14),      # ifm
    st.integers(min_value=1, max_value=4),       # kernel
    st.integers(min_value=1, max_value=16),      # ic
    st.integers(min_value=1, max_value=16),      # oc
    stride=st.integers(min_value=1, max_value=2),
    padding=st.integers(min_value=0, max_value=1),
).filter(lambda l: l.kernel_h <= l.ifm_h)

networks = st.lists(layers, min_size=1, max_size=3).map(
    lambda ls: Network.from_layers("rand", ls))

#: Geometry ladder pools are drawn from: small enough that residency
#: floors stay tiny, varied enough (non-square included) that best-fit
#: assignments actually mix.
GEOMETRIES = (PIMArray(16, 16), PIMArray(24, 48), PIMArray(32, 32),
              PIMArray(64, 24), PIMArray(64, 64), PIMArray(128, 48),
              PIMArray(128, 128))

pools = st.lists(st.sampled_from(GEOMETRIES), min_size=2, max_size=3,
                 unique=True)

SCHEMES = ("vw-sdk", "im2col")

#: Deliberately non-default constants, so any path that silently falls
#: back to DEFAULT_COST_PARAMS breaks these tests.
PARAMS = CostParams(cycle_time_ns=80.0, adc_energy_pj=3.0,
                    dac_energy_pj=0.125, cell_energy_pj=0.002)


def _frontier(network, pool, scheme, *, pools_flag):
    try:
        return chip_pareto(network, pool, scheme, pools=pools_flag,
                           cost_params=PARAMS)
    except InfeasibleTargetError:
        return None


def _signature(front):
    """Order-independent frontier fingerprint (exact floats)."""
    return sorted((p.pool, p.num_arrays, p.cells, p.energy_nj,
                   p.bottleneck_cycles, p.latency_us) for p in front)


@given(networks, pools, st.sampled_from(SCHEMES))
@settings(max_examples=40, deadline=None)
def test_pool_frontier_dominates_homogeneous(network, pool, scheme):
    homogeneous = _frontier(network, pool, scheme, pools_flag=False)
    assume(homogeneous is not None)
    heterogeneous = _frontier(network, pool, scheme, pools_flag=True)
    assert heterogeneous is not None
    for point in homogeneous:
        assert any(
            q.cells <= point.cells
            and q.energy_nj <= point.energy_nj
            and q.bottleneck_cycles <= point.bottleneck_cycles
            for q in heterogeneous), (
            f"homogeneous point {point.objectives} undominated")


@given(networks, pools, st.sampled_from(SCHEMES))
@settings(max_examples=40, deadline=None)
def test_frontier_points_replay_bit_identical(network, pool, scheme):
    front = _frontier(network, pool, scheme, pools_flag=True)
    assume(front is not None)
    for point in front:
        solutions = list(point.solutions)
        chip = ChipConfig(solutions[0].array, point.num_arrays)
        plan = plan_pipeline(network, chip, scheme, solutions=solutions)
        # The breakpoint budgets are exact: the greedy spends them fully.
        assert plan.arrays_used == point.num_arrays
        assert plan.bottleneck_cycles == point.bottleneck_cycles
        # Scalar per-stage cost_report pricing: the correctly-rounded
        # sum of the exact per-repeat terms (never pre-rounded * r).
        energy = math.fsum(
            cost_report(sol, PARAMS).compute_energy_nj
            for sol in solutions for _ in range(sol.layer.repeats))
        assert point.energy_nj == energy
        assert point.latency_us == \
            plan.bottleneck_cycles * PARAMS.cycle_time_ns / 1000.0
        cells = sum(a.arrays * a.solution.layer.repeats
                    * a.solution.array.cells for a in plan.allocations)
        assert point.cells == cells


@given(networks, pools, st.sampled_from(SCHEMES))
@settings(max_examples=30, deadline=None)
def test_frontier_invariant_to_layer_order(network, pool, scheme):
    front = _frontier(network, pool, scheme, pools_flag=True)
    assume(front is not None)
    reversed_network = Network.from_layers("rand-rev",
                                           list(network)[::-1])
    front_rev = _frontier(reversed_network, pool, scheme, pools_flag=True)
    assert front_rev is not None
    assert _signature(front) == _signature(front_rev)


@given(st.lists(st.tuples(layers, st.integers(min_value=1, max_value=3)),
                min_size=1, max_size=2),
       pools, st.sampled_from(SCHEMES))
@settings(max_examples=30, deadline=None)
def test_frontier_invariant_to_repeat_grouping(pairs, pool, scheme):
    grouped = Network.from_layers(
        "grouped", [dataclasses.replace(layer, repeats=reps)
                    for layer, reps in pairs])
    unrolled = Network.from_layers(
        "unrolled", [dataclasses.replace(layer, repeats=1)
                     for layer, reps in pairs for _ in range(reps)])
    front = _frontier(grouped, pool, scheme, pools_flag=True)
    assume(front is not None)
    front_unrolled = _frontier(unrolled, pool, scheme, pools_flag=True)
    assert front_unrolled is not None
    assert _signature(front) == _signature(front_unrolled)


# ----------------------------------------------------------------------
# InfeasibleTargetError contract (PR 4's DSE convention)
# ----------------------------------------------------------------------

def test_empty_feasible_set_raises_with_best_none():
    network = Network.from_layers(
        "tiny", [ConvLayer.square(8, 3, 8, 8)])
    with pytest.raises(InfeasibleTargetError) as excinfo:
        chip_pareto(network, [PIMArray.square(64)], max_arrays=1)
    assert excinfo.value.best is None


def test_unreachable_target_attaches_best_achievable():
    from repro.api import default_engine

    network = Network.from_layers(
        "tiny", [ConvLayer.square(8, 3, 8, 8)])
    geometry = PIMArray.square(64)
    lattice = default_engine().chip_lattice(network, geometry)
    floor = lattice.floor_arrays
    achievable = lattice.bottleneck_at(floor)
    assert achievable > 1
    with pytest.raises(InfeasibleTargetError) as excinfo:
        chip_pareto(network, [geometry], max_arrays=floor,
                    target_bottleneck=1)
    assert excinfo.value.best == achievable


def test_malformed_bounds_raise_configuration_error():
    from repro.core import ConfigurationError

    network = Network.from_layers(
        "tiny", [ConvLayer.square(8, 3, 8, 8)])
    with pytest.raises(ConfigurationError):
        chip_pareto(network, [PIMArray.square(64)], target_bottleneck=0)
    with pytest.raises(ConfigurationError):
        chip_pareto(network, [PIMArray.square(64)], max_arrays=0)
