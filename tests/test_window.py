"""Unit tests for ParallelWindow and the Algorithm 1 scan order."""

import pytest

from repro import ConfigurationError, ConvLayer, ParallelWindow
from repro.core.window import iter_candidate_windows


class TestConstruction:
    def test_basic(self):
        win = ParallelWindow(h=3, w=10)
        assert win.h == 3
        assert win.w == 10
        assert win.area == 30

    def test_square(self):
        win = ParallelWindow.square(4)
        assert win.is_square
        assert win.area == 16

    def test_of_kernel(self):
        layer = ConvLayer(ifm_h=9, ifm_w=12, kernel_h=2, kernel_w=4,
                          in_channels=1, out_channels=1)
        win = ParallelWindow.of_kernel(layer)
        assert (win.h, win.w) == (2, 4)

    def test_zero_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelWindow(h=0, w=3)

    def test_str_is_width_first(self):
        # Paper's Table I prints VGG-13 layer 1's window as "10x3".
        assert str(ParallelWindow(h=3, w=10)) == "10x3"

    def test_parse_roundtrip(self):
        win = ParallelWindow.parse("10x3")
        assert (win.w, win.h) == (10, 3)
        assert str(win) == "10x3"

    def test_parse_rejects_single_number(self):
        with pytest.raises(ConfigurationError):
            ParallelWindow.parse("10")

    @pytest.mark.parametrize("spec", ["axb", "ax3", "4xb", "x", "4x3x2",
                                      "4.5x3"])
    def test_parse_rejects_non_integer_spec(self, spec):
        # Regression: non-numeric parts used to escape as a bare
        # ValueError from int() instead of ConfigurationError.
        with pytest.raises(ConfigurationError,
                           match="window spec must look like '4x3'"):
            ParallelWindow.parse(spec)

    def test_transposed(self):
        assert ParallelWindow(h=3, w=10).transposed() == ParallelWindow(
            h=10, w=3)


class TestWindowMath:
    def test_windows_along(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        assert ParallelWindow(h=3, w=4).windows_along(layer) == (1, 2)

    def test_windows_inside(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        assert ParallelWindow(h=5, w=4).windows_inside(layer) == 6

    def test_kernel_window_has_one_window(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        assert ParallelWindow.square(3).windows_inside(layer) == 1

    def test_smaller_than_kernel_raises(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        with pytest.raises(ConfigurationError):
            ParallelWindow(h=2, w=5).windows_along(layer)

    def test_fits_ifm(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        assert ParallelWindow(h=14, w=14).fits_ifm(layer)
        assert not ParallelWindow(h=15, w=3).fits_ifm(layer)

    def test_fits_ifm_uses_padding(self):
        layer = ConvLayer.square(14, 3, 1, 1, padding=1)
        assert ParallelWindow(h=16, w=16).fits_ifm(layer)

    def test_covers_kernel(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        assert ParallelWindow(h=3, w=3).covers_kernel(layer)
        assert not ParallelWindow(h=2, w=9).covers_kernel(layer)


class TestScanOrder:
    def test_first_candidate_widens_width(self):
        layer = ConvLayer.square(6, 3, 1, 1)
        first = next(iter_candidate_windows(layer))
        assert (first.h, first.w) == (3, 4)

    def test_kernel_window_skipped(self):
        layer = ConvLayer.square(6, 3, 1, 1)
        candidates = list(iter_candidate_windows(layer))
        assert ParallelWindow(h=3, w=3) not in candidates

    def test_count(self):
        layer = ConvLayer.square(6, 3, 1, 1)
        # heights 3..6 x widths 3..6 minus the kernel window = 15.
        assert len(list(iter_candidate_windows(layer))) == 15

    def test_width_major_order(self):
        layer = ConvLayer.square(5, 3, 1, 1)
        candidates = [(c.h, c.w) for c in iter_candidate_windows(layer)]
        assert candidates == [(3, 4), (3, 5),
                              (4, 3), (4, 4), (4, 5),
                              (5, 3), (5, 4), (5, 5)]

    def test_rectangular_ifm(self):
        layer = ConvLayer(ifm_h=4, ifm_w=6, kernel_h=3, kernel_w=3,
                          in_channels=1, out_channels=1)
        candidates = list(iter_candidate_windows(layer))
        assert max(c.w for c in candidates) == 6
        assert max(c.h for c in candidates) == 4
