"""Integration tests: every paper experiment regenerates and verifies."""

import pytest

from repro.experiments import (
    fig1,
    fig2,
    fig4,
    fig5,
    fig7,
    fig8,
    fig9,
    table1,
)
from repro.experiments.runner import (
    format_scoreboard,
    run_all,
    verification_scoreboard,
)


class TestTable1:
    def test_all_checks_pass(self):
        for name, expected, measured, ok in table1.verify():
            assert ok, f"{name}: paper={expected} measured={measured}"

    def test_totals(self):
        results = table1.run()
        assert results["VGG-13"].totals == (243736, 114697, 77102)
        assert results["Resnet-18"].totals == (20041, 7240, 4294)

    def test_to_text_contains_rows(self):
        text = table1.run()["Resnet-18"].to_text()
        assert "10x8x3x64" in text
        assert "4294" in text

    def test_row_count(self):
        results = table1.run()
        assert len(results["VGG-13"].rows) == 10
        assert len(results["Resnet-18"].rows) == 5


class TestFig1:
    def test_checks_pass(self):
        for name, expected, measured, ok in fig1.verify():
            assert ok, f"{name}: {expected} vs {measured}"

    def test_cycle_ordering(self):
        result = fig1.run()
        cycles = [bd.total for bd in result.breakdowns.values()]
        assert cycles == sorted(cycles, reverse=True)

    def test_text(self):
        assert "18" in fig1.run().to_text()


class TestFig2:
    def test_runs_and_renders(self):
        result = fig2.run()
        assert set(result.art) == {"im2col", "smd", "sdk", "vw-sdk"}
        text = result.to_text()
        assert "im2col" in text

    def test_vw_uses_fewest_cycles(self):
        result = fig2.run()
        cycles = {s: st["cycles"] for s, st in result.stats.items()}
        assert cycles["vw-sdk"] <= min(cycles["im2col"], cycles["sdk"])


class TestFig4:
    def test_checks_pass(self):
        for name, expected, measured, ok in fig4.verify():
            assert ok, f"{name}: {expected} vs {measured}"

    def test_no_array_holds_late_vgg_layers(self):
        result = fig4.run()
        from repro.core import PIMArray
        # Even 512x512 with im2col cannot hold conv layers with IC>=64.
        assert result.mappable_layers("im2col", PIMArray(512, 512)) <= 2
        assert result.mappable_layers("sdk-4x4", PIMArray(128, 128)) <= 1


class TestFig5:
    def test_checks_pass(self):
        for name, expected, measured, ok in fig5.verify():
            assert ok, f"{name}: {expected} vs {measured}"

    def test_series_lengths(self):
        result = fig5.run()
        assert all(len(s) == len(fig5.IFM_SIZES) for s in result.series)

    def test_4x3_dominates_4x4_everywhere(self):
        result = fig5.run()
        by_name = {s.name: s for s in result.series}
        assert all(a >= b for a, b in zip(by_name["4x3 rectangle"].y,
                                          by_name["4x4 square"].y))


class TestFig7:
    def test_checks_pass(self):
        for name, expected, measured, ok in fig7.verify():
            assert ok, f"{name}: {expected} vs {measured}"

    def test_monotone_decreasing(self):
        result = fig7.run()
        for series in result.ic_series + result.oc_series:
            assert all(a >= b for a, b in zip(series.y, series.y[1:]))

    def test_larger_array_dominates(self):
        result = fig7.run()
        small = result.ic_series[0].y
        large = result.ic_series[-1].y
        assert all(l >= s for s, l in zip(small, large))


class TestFig8:
    def test_checks_pass(self):
        for name, expected, measured, ok in fig8.verify():
            assert ok, f"{name}: {expected} vs {measured}"

    def test_per_layer_series_have_total_entry(self):
        result = fig8.run()
        for series_list in result.per_layer.values():
            for series in series_list:
                assert series.x[-1] == "total"

    def test_vw_speedup_at_least_one_everywhere(self):
        result = fig8.run()
        for series_list in result.per_layer.values():
            vw = next(s for s in series_list if s.name == "vw-sdk")
            assert all(v >= 1.0 for v in vw.y)


class TestFig9:
    def test_checks_pass(self):
        for name, expected, measured, ok in fig9.verify():
            assert ok, f"{name}: {expected} vs {measured}"

    def test_layer5_paper_value(self):
        result = fig9.run()
        assert result.peak(5, "vw-sdk") == pytest.approx(73.8, abs=0.05)

    def test_panel_b_rows(self):
        result = fig9.run()
        assert len(result.panel_b) == 2 * len(fig9.ARRAY_SWEEP)


class TestRunner:
    def test_scoreboard_all_pass(self):
        checks = verification_scoreboard()
        failed = [c for c in checks if not c.ok]
        assert not failed, format_scoreboard(failed)
        assert len(checks) >= 45

    def test_run_all_produces_text(self):
        texts = run_all()
        assert set(texts) == set(
            ["table1", "fig1", "fig2", "fig4", "fig5", "fig7", "fig8",
             "fig9"])
        assert all(isinstance(t, str) and t for t in texts.values())

    def test_format_scoreboard(self):
        checks = verification_scoreboard()
        text = format_scoreboard(checks)
        assert "checks passed" in text
        assert "FAIL" not in text
