"""Bit-identity and memory-discipline tests for the backend shim.

The contract of ``core/backend.py`` is that every backend — the numpy
reference, the numba JIT kernels, and (transitively) the minimized
dtypes and workspace reuse both employ — produces **bit-identical**
values to the scalar model.  These properties pin it over randomized
layers, arrays and strides:

* the numba kernel *bodies* (``core/_kernels.py``) run interpreted
  here, so the JIT arithmetic is property-tested even on numba-free
  machines (the compiled path is additionally checked when numba is
  installed — see the ``skipif`` tests);
* the dtype-widening boundary is forced explicitly and ``INFEASIBLE``
  semantics are asserted to survive minimization;
* the workspace arena's reuse/grow/alignment rules are pinned, along
  with the engine-level counters surfaced through ``stats``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import MappingEngine
from repro.core import ConvLayer, PIMArray
from repro.core._kernels import (finish_kernel, front_kernel,
                                 geo_cycles_kernel)
from repro.core.backend import (HAVE_NUMBA, Backend, NumbaBackend,
                                NumpyBackend, Workspace, get_backend,
                                minimal_dtype)
from repro.core.cycles import variable_window_cycles
from repro.core.lattice import INFEASIBLE, layer_lattice
from repro.core.sweep import NetworkLattice
from repro.core.types import ConfigurationError
from repro.search import solve


class KernelBackend(NumbaBackend):
    """The numba kernels run *interpreted* — JIT arithmetic, no JIT.

    Same dispatch methods as :class:`NumbaBackend`, but the kernel
    bodies stay plain Python, so this backend works everywhere and
    proves the loop arithmetic independently of compilation.
    """

    name = "kernel-interp"

    def __init__(self) -> None:  # deliberately no numba requirement
        self._finish = finish_kernel
        self._geo_cycles = geo_cycles_kernel
        self._front = front_kernel


def all_backends():
    backends = [NumpyBackend(), KernelBackend()]
    if HAVE_NUMBA:
        backends.append(get_backend("numba"))
    return backends


layers = st.builds(
    ConvLayer.square,
    st.integers(min_value=4, max_value=18),      # ifm
    st.integers(min_value=1, max_value=4),       # kernel
    st.integers(min_value=1, max_value=24),      # ic
    st.integers(min_value=1, max_value=24),      # oc
    stride=st.integers(min_value=1, max_value=3),
    padding=st.integers(min_value=0, max_value=2),
).filter(lambda l: l.kernel_h <= l.ifm_h)

arrays = st.builds(
    PIMArray,
    st.integers(min_value=8, max_value=400),     # rows
    st.integers(min_value=4, max_value=400),     # cols
)

FIELDS = ("ic_t", "oc_t", "ar", "ac", "n_pw", "cycles")


# ----------------------------------------------------------------------
# Bit-identity: with_array finishing step (eqs. 4-8)
# ----------------------------------------------------------------------

@given(layers, arrays)
@settings(max_examples=80, deadline=None)
def test_with_array_bit_identical_across_backends(layer, array):
    lat = layer_lattice(layer)
    ref = lat.with_array(array, backend=NumpyBackend())
    for backend in all_backends()[1:]:
        got = lat.with_array(array, backend=backend)
        assert np.array_equal(ref.feasible, got.feasible), backend.name
        for name in FIELDS:
            assert np.array_equal(
                getattr(ref, name).astype(np.int64, copy=False),
                getattr(got, name).astype(np.int64, copy=False)), \
                (backend.name, name)


@given(layers.filter(lambda l: l.stride == 1), arrays)
@settings(max_examples=40, deadline=None)
def test_feasible_cells_match_scalar_oracle(layer, array):
    # variable_window_cycles speaks stride-1 windows only; strided
    # layers are oracle-checked end-to-end through ``solve`` below.
    lattice = layer_lattice(layer).with_array(array, backend="numpy")
    rows, cols = np.nonzero(lattice.feasible)
    # Sample a handful of feasible cells; the scalar model is the
    # ground truth for each one.
    for i, j in list(zip(rows.tolist(), cols.tolist()))[:5]:
        breakdown = variable_window_cycles(layer, array,
                                           lattice.window_at(i, j))
        assert int(lattice.cycles[i, j]) == breakdown.total
        assert int(lattice.n_pw[i, j]) == breakdown.n_pw
        assert int(lattice.ar[i, j]) == breakdown.ar
        assert int(lattice.ac[i, j]) == breakdown.ac
        assert int(lattice.ic_t[i, j]) == breakdown.ic_t
        assert int(lattice.oc_t[i, j]) == breakdown.oc_t


# ----------------------------------------------------------------------
# Bit-identity: network sweep evaluation + dominance prune
# ----------------------------------------------------------------------

@given(st.lists(layers, min_size=1, max_size=3),
       st.lists(arrays, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_network_sweep_bit_identical_across_backends(net, probe):
    ref = NetworkLattice.for_network(net, "vw-sdk", backend="numpy")
    expected = ref.cycles_for(probe)
    for backend in all_backends()[1:]:
        lattice = NetworkLattice.for_network(net, "vw-sdk",
                                             backend=backend)
        assert np.array_equal(lattice.cycles_for(probe), expected), \
            backend.name
        assert lattice.network_cycles(probe[0]) == int(expected[0])


@given(st.lists(layers, min_size=1, max_size=2), arrays)
@settings(max_examples=30, deadline=None)
def test_network_sweep_matches_per_layer_solver(net, array):
    total = sum(solve(layer, array, "vw-sdk").cycles for layer in net)
    for backend in all_backends():
        lattice = NetworkLattice.for_network(net, "vw-sdk",
                                             backend=backend)
        assert lattice.network_cycles(array) == total, backend.name


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=40),
                          st.integers(min_value=1, max_value=40),
                          st.integers(min_value=1, max_value=40)),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_front_indices_bit_identical_across_backends(cells):
    n_pw, area, windows = (np.asarray(col, dtype=np.int64)
                           for col in zip(*cells))
    expected = NumpyBackend().front_indices(n_pw, area, windows)
    for backend in all_backends()[1:]:
        got = backend.front_indices(n_pw, area, windows)
        assert np.array_equal(got, expected), backend.name


# ----------------------------------------------------------------------
# Dtype minimization and the widening boundary
# ----------------------------------------------------------------------

def test_minimal_dtype_boundary():
    edge = np.iinfo(np.int32).max
    assert minimal_dtype(0) == np.dtype(np.int32)
    assert minimal_dtype(edge - 1) == np.dtype(np.int32)
    # The dtype max is reserved as the local infeasibility sentinel,
    # so a bound that *reaches* it must widen.
    assert minimal_dtype(edge) == np.dtype(np.int64)
    assert minimal_dtype(edge * edge) == np.dtype(np.int64)


def test_finish_dtype_widens_past_int32():
    array = PIMArray.square(512)
    small = layer_lattice(ConvLayer.square(14, 3, 256, 256))
    assert small.finish_dtype(array) == np.dtype(np.int32)
    # 224x224 with 256->512 channels: max(n_pw) * IC * OC overflows
    # int32, so the whole finishing step runs in int64.
    big = layer_lattice(ConvLayer.square(224, 3, 256, 512))
    assert big.finish_dtype(array) == np.dtype(np.int64)


def test_widened_layer_bit_identical_across_backends():
    lat = layer_lattice(ConvLayer.square(224, 3, 256, 512))
    array = PIMArray.square(512)
    ref = lat.with_array(array, backend="numpy")
    assert ref.cycles.dtype == np.dtype(np.int64)
    got = lat.with_array(array, backend=KernelBackend())
    for name in FIELDS:
        assert np.array_equal(getattr(ref, name), getattr(got, name)), name
    # And the widened grid still beats the int32 range somewhere —
    # the widening was *needed*, not vacuous.
    assert int(ref.cycles.max()) > np.iinfo(np.int32).max // 256


@given(layers, arrays)
@settings(max_examples=40, deadline=None)
def test_infeasible_survives_minimization(layer, array):
    lattice = layer_lattice(layer).with_array(array, backend="numpy")
    masked = lattice.masked_cycles()
    assert masked.dtype == np.dtype(np.int64)
    infeasible = ~lattice.feasible
    assert np.all(masked[infeasible] == INFEASIBLE)
    # Real values never collide with the sentinel, whatever the
    # minimized storage dtype was.
    assert np.all(masked[lattice.feasible] < INFEASIBLE)


def test_all_infeasible_grid_is_all_sentinel():
    # A 4-row array cannot hold a 3x3 kernel's 9-cell window column.
    lattice = layer_lattice(ConvLayer.square(8, 3, 4, 4)).with_array(
        PIMArray(4, 4), backend="numpy")
    assert not lattice.feasible.any()
    assert np.all(lattice.masked_cycles() == INFEASIBLE)
    assert np.all(lattice.cycles == 0)


# ----------------------------------------------------------------------
# Workspace arena discipline
# ----------------------------------------------------------------------

def test_workspace_grows_then_reuses():
    ws = Workspace(nbytes=64)
    first = ws.borrow((4, 4), np.int64)          # 128 B > 64 B block
    assert first.shape == (4, 4)
    assert ws.grows == 1 and ws.reuses == 0
    first[:] = 7
    ws.release(0)
    second = ws.borrow((2, 2), np.int64)
    assert ws.reuses == 1
    assert second.shape == (2, 2)
    assert ws.peak_bytes >= 128


def test_workspace_borrows_are_aligned_and_lifo():
    ws = Workspace()
    mark = ws.mark()
    a = ws.borrow(3, np.uint8)
    b = ws.borrow((2, 2), np.int64)
    assert b.ctypes.data % Workspace.ALIGN == 0
    a[:] = 1
    b[:] = 2
    assert a.tolist() == [1, 1, 1]               # no overlap
    ws.release(mark)
    c = ws.borrow(3, np.uint8)
    assert c.ctypes.data == a.ctypes.data        # storage recycled


def test_workspace_grow_keeps_old_views_alive():
    ws = Workspace(nbytes=32)
    old = ws.borrow(16, np.uint8)
    old[:] = 42
    ws.borrow(1 << 12, np.uint8)                 # forces replacement
    assert ws.grows >= 1
    assert old.tolist() == [42] * 16             # old block still valid


# ----------------------------------------------------------------------
# Selection, fallback and engine surfacing
# ----------------------------------------------------------------------

def test_get_backend_resolution():
    assert get_backend("numpy").name == "numpy"
    assert get_backend("numpy") is get_backend("numpy")  # shared
    expected = "numba" if HAVE_NUMBA else "numpy"
    assert get_backend("auto").name == expected
    assert get_backend(None).name == expected
    inst = KernelBackend()
    assert get_backend(inst) is inst             # instance passthrough
    with pytest.raises(ConfigurationError):
        get_backend("cuda")


@pytest.mark.skipif(HAVE_NUMBA, reason="numba installed: no fallback")
def test_numba_backend_unavailable_raises():
    with pytest.raises(ConfigurationError):
        NumbaBackend()
    with pytest.raises(ConfigurationError):
        MappingEngine(backend="numba")


def test_engine_surfaces_backend_and_workspace_counters():
    engine = MappingEngine(backend="numpy")
    net = [ConvLayer.square(14, 3, 16, 16), ConvLayer.square(7, 3, 32, 32)]
    probes = [PIMArray.square(s) for s in (64, 128, 256)]
    first = engine.sweep_cycles(net, probes)
    assert np.array_equal(engine.sweep_cycles(net, probes), first)
    stats = engine.stats
    assert stats.backend == "numpy"
    assert stats.workspace_reuses > 0
    payload = stats.to_dict()
    assert payload["backend"] == "numpy"
    assert payload["workspace"]["reuses"] == stats.workspace_reuses
    # Batch-scoped snapshots keep the legacy envelope exactly.
    from repro.api import CacheSnapshot
    assert "backend" not in CacheSnapshot(hits=1).to_dict()


def test_backend_name_keys_the_sweep_memo():
    engine = MappingEngine(backend="numpy")
    net = [ConvLayer.square(14, 3, 16, 16)]
    shared = engine.network_sweep(net)
    assert engine.network_sweep(net) is shared   # same backend: memo hit
    other = engine.network_sweep(net, "vw-sdk", KernelBackend())
    assert other is not shared                   # distinct backend entry
    array = PIMArray.square(128)
    assert other.network_cycles(array) == shared.network_cycles(array)


@pytest.mark.skipif(not HAVE_NUMBA, reason="needs numba")
def test_numba_engine_bit_identical_to_numpy_engine():
    from repro.networks import resnet18
    net = resnet18()
    probes = [PIMArray(r, c) for r in (64, 128, 512) for c in (64, 256)]
    base = MappingEngine(backend="numpy").sweep_cycles(net, probes)
    jit = MappingEngine(backend="numba").sweep_cycles(net, probes)
    assert np.array_equal(base, jit)
