"""Unit tests for the SDK baseline reconstruction [2]."""

import pytest

from repro import ConvLayer, PIMArray
from repro.search import im2col_solution, sdk_solution
from repro.search.sdk import sdk_cycles_for, sdk_window_for_duplication


class TestWindowForDuplication:
    def test_d1_is_kernel(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        assert sdk_window_for_duplication(layer, 1).area == 9

    def test_d2_3x3_kernel(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        win = sdk_window_for_duplication(layer, 2)
        assert (win.h, win.w) == (4, 4)

    def test_d2_7x7_kernel(self):
        layer = ConvLayer.square(112, 7, 3, 64)
        win = sdk_window_for_duplication(layer, 2)
        assert (win.h, win.w) == (8, 8)


class TestSelectionRule:
    """The duplication must not add AR or AC cycles over im2col."""

    def test_vgg_l1_picks_4x4(self):
        layer = ConvLayer.square(224, 3, 3, 64)
        sol = sdk_solution(layer, PIMArray.square(512))
        assert str(sol.window) == "4x4"
        assert sol.cycles == 12321

    def test_vgg_l1_not_5x5_because_columns(self):
        # d=3 would need 64*9=576 columns > 512 (AC 2 > AC_im2col 1).
        layer = ConvLayer.square(224, 3, 3, 64)
        bd = sdk_cycles_for(layer, PIMArray.square(512), 3)
        assert bd.ac == 2

    def test_vgg_l2_keeps_4x4_with_ar2(self):
        # AR_sdk = ceil(1024/512) = 2 == AR_im2col -> allowed.
        layer = ConvLayer.square(224, 3, 64, 64)
        sol = sdk_solution(layer, PIMArray.square(512))
        assert str(sol.window) == "4x4"
        assert sol.breakdown.ar == 2
        assert sol.cycles == 24642

    def test_vgg_l4_falls_back_to_im2col(self):
        # AR_sdk(4x4) = ceil(2048/512) = 4 > AR_im2col 3 -> rejected.
        layer = ConvLayer.square(112, 3, 128, 128)
        sol = sdk_solution(layer, PIMArray.square(512))
        assert sol.is_im2col_shaped
        assert sol.cycles == 36300

    def test_resnet_l1_picks_8x8(self):
        layer = ConvLayer.square(112, 7, 3, 64)
        sol = sdk_solution(layer, PIMArray.square(512))
        assert str(sol.window) == "8x8"
        assert sol.cycles == 2809

    def test_resnet_l3_falls_back(self):
        layer = ConvLayer.square(28, 3, 128, 128)
        sol = sdk_solution(layer, PIMArray.square(512))
        assert sol.is_im2col_shaped
        assert sol.cycles == 2028

    def test_fallback_equals_im2col_cycles(self):
        layer = ConvLayer.square(28, 3, 512, 512)
        arr = PIMArray.square(512)
        assert (sdk_solution(layer, arr).cycles
                == im2col_solution(layer, arr).cycles)

    def test_large_array_allows_bigger_duplication(self):
        layer = ConvLayer.square(224, 3, 3, 64)
        small = sdk_solution(layer, PIMArray.square(512))
        big = sdk_solution(layer, PIMArray.square(2048))
        assert big.window.area > small.window.area
        assert big.cycles < small.cycles

    def test_duplication_reported_as_square(self):
        layer = ConvLayer.square(224, 3, 3, 64)
        sol = sdk_solution(layer, PIMArray.square(512))
        assert sol.duplication == 4  # 2x2 copies

    def test_scheme_label(self):
        layer = ConvLayer.square(224, 3, 3, 64)
        assert sdk_solution(layer, PIMArray.square(512)).scheme == "sdk"


class TestCyclesFor:
    def test_window_beyond_ifm_returns_none(self):
        layer = ConvLayer.square(5, 3, 4, 4)
        assert sdk_cycles_for(layer, PIMArray.square(512), 4) is None

    def test_d2_breakdown_values(self):
        layer = ConvLayer.square(56, 3, 64, 64)
        bd = sdk_cycles_for(layer, PIMArray.square(512), 2)
        assert (bd.n_pw, bd.ar, bd.ac) == (729, 2, 1)
        assert bd.total == 1458

    def test_table_cell_uses_full_channels(self):
        # The paper's SDK column prints full IC/OC.
        layer = ConvLayer.square(224, 3, 64, 64)
        sol = sdk_solution(layer, PIMArray.square(512))
        assert sol.table_cell == "4x4x64x64"
