"""Property-based tests (hypothesis) for the model's invariants.

These lock the DESIGN.md section-6 invariants over randomly drawn
layers, arrays and windows rather than hand-picked cases.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import ConvLayer, MappingError, PIMArray, ParallelWindow
from repro.core.cycles import (
    im2col_cycles,
    num_parallel_windows,
    variable_window_cycles,
)
from repro.core.strided import search_strided
from repro.core.utilization import utilization_report
from repro.pim import PIMEngine, conv2d_reference
from repro.search import (
    exhaustive_solution,
    im2col_solution,
    sdk_solution,
    smd_solution,
    solve,
    vwsdk_solution,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

small_layers = st.builds(
    ConvLayer.square,
    st.integers(min_value=4, max_value=18),      # ifm
    st.integers(min_value=1, max_value=4),       # kernel
    st.integers(min_value=1, max_value=24),      # ic
    st.integers(min_value=1, max_value=24),      # oc
).filter(lambda l: l.kernel_h <= l.ifm_h)

arrays = st.builds(
    PIMArray,
    st.integers(min_value=8, max_value=600),     # rows
    st.integers(min_value=4, max_value=600),     # cols
)

tiny_layers = st.builds(
    ConvLayer.square,
    st.integers(min_value=4, max_value=9),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=6),
).filter(lambda l: l.kernel_h <= l.ifm_h)

tiny_arrays = st.builds(
    PIMArray,
    st.integers(min_value=6, max_value=96),
    st.integers(min_value=3, max_value=48),
)


# ----------------------------------------------------------------------
# Search invariants
# ----------------------------------------------------------------------

@given(small_layers, arrays)
@settings(max_examples=60, deadline=None)
def test_vwsdk_never_worse_than_im2col(layer, array):
    assert (vwsdk_solution(layer, array).cycles
            <= im2col_solution(layer, array).cycles)


@given(small_layers, arrays)
@settings(max_examples=60, deadline=None)
def test_vwsdk_no_worse_than_any_whole_channel_window(layer, array):
    """VW-SDK's optimum beats every window in its own search space.

    Note this is deliberately *not* "VW-SDK <= SDK": the SDK baseline
    lays rows out contiguously and may split a channel's window across
    row tiles, which on tiny arrays can beat the whole-channel eq. 4/5
    accounting (see DESIGN.md section 6).  On every paper configuration
    VW-SDK <= SDK holds — locked in test_paper_regressions.
    """
    from repro.core.cycles import variable_window_cycles
    vw = vwsdk_solution(layer, array)
    sdk = sdk_solution(layer, array)
    try:
        sdk_window_as_vw = variable_window_cycles(layer, array,
                                                  sdk.window).total
    except MappingError:
        return  # SDK exploited a window infeasible for whole channels
    assert vw.cycles <= sdk_window_as_vw


@given(small_layers, arrays)
@settings(max_examples=40, deadline=None)
def test_vwsdk_matches_exhaustive_oracle(layer, array):
    assert (vwsdk_solution(layer, array).cycles
            == exhaustive_solution(layer, array).cycles)


@given(small_layers, arrays, st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_bigger_array_never_hurts(layer, array, factor):
    small = vwsdk_solution(layer, array).cycles
    big = vwsdk_solution(layer, array.scaled(factor, factor)).cycles
    assert big <= small


@given(small_layers, arrays)
@settings(max_examples=60, deadline=None)
def test_cycles_at_least_window_lower_bound(layer, array):
    # One cycle can produce at most floor(cols / 1) outputs of one
    # channel; any mapping needs >= ceil(total windows / cols) cycles
    # even with perfect packing, and >= 1.
    sol = vwsdk_solution(layer, array)
    assert sol.cycles >= max(
        1, -(-layer.num_windows * layer.out_channels
             // (array.cols * max(1, array.rows // layer.kernel_area))
             if array.rows >= layer.kernel_area else 1))


@given(small_layers, arrays)
@settings(max_examples=60, deadline=None)
def test_breakdown_product_identity(layer, array):
    sol = vwsdk_solution(layer, array)
    bd = sol.breakdown
    assert sol.cycles == bd.n_pw * bd.ar * bd.ac


@given(small_layers)
@settings(max_examples=60, deadline=None)
def test_parallel_window_count_covers_all_windows(layer):
    # N_PW x windows-per-PW >= total windows (covering schedule).
    for w in range(layer.kernel_w, layer.ifm_w + 1, 2):
        for h in range(layer.kernel_h, layer.ifm_h + 1, 3):
            window = ParallelWindow(h=h, w=w)
            n = num_parallel_windows(layer, window)
            assert n * window.windows_inside(layer) >= layer.num_windows


@given(small_layers, arrays)
@settings(max_examples=60, deadline=None)
def test_strided_search_agrees_at_stride_one(layer, array):
    assert (search_strided(layer, array).cycles
            == vwsdk_solution(layer, array).cycles)


@given(small_layers, arrays)
@settings(max_examples=60, deadline=None)
def test_smd_never_worse_than_im2col(layer, array):
    assert (smd_solution(layer, array).cycles
            <= im2col_solution(layer, array).cycles)


# ----------------------------------------------------------------------
# Utilization invariants
# ----------------------------------------------------------------------

@given(small_layers, arrays,
       st.sampled_from(["im2col", "smd", "sdk", "vw-sdk"]))
@settings(max_examples=80, deadline=None)
def test_utilization_fractions_valid(layer, array, scheme):
    rep = utilization_report(solve(layer, array, scheme))
    for tile, frac in zip(rep.tiles, rep.fractions):
        assert 0 < frac <= 1
        assert tile.rows_used <= array.rows
        assert tile.cols_used <= array.cols
        assert tile.cells_used <= tile.rows_used * tile.cols_used


@given(small_layers, arrays)
@settings(max_examples=60, deadline=None)
def test_total_mapped_cells_equal_weight_count_vw(layer, array):
    # Summing used cells over the AR x AC grid with each (ic, oc) tile
    # counted once must equal K*K*IC*OC x windows-per-PW.
    sol = vwsdk_solution(layer, array)
    assume(not sol.is_im2col_shaped)
    rep = utilization_report(sol)
    nw = sol.window.windows_inside(layer)
    total = sum(t.cells_used for t in rep.tiles)
    assert total == layer.weight_count * nw


# ----------------------------------------------------------------------
# Functional equivalence (the big one)
# ----------------------------------------------------------------------

@given(tiny_layers, tiny_arrays,
       st.sampled_from(["im2col", "smd", "sdk", "vw-sdk"]),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_engine_matches_reference_convolution(layer, array, scheme, seed):
    rng = np.random.default_rng(seed)
    ifm = rng.integers(-3, 4, (layer.in_channels, layer.ifm_h,
                               layer.ifm_w)).astype(float)
    kernel = rng.integers(-3, 4, (layer.out_channels, layer.in_channels,
                                  layer.kernel_h, layer.kernel_w)
                          ).astype(float)
    sol = solve(layer, array, scheme)
    result = PIMEngine().run(sol, ifm, kernel)
    np.testing.assert_array_equal(result.ofm, conv2d_reference(ifm, kernel))
    assert result.cycles == sol.cycles


@given(tiny_layers, tiny_arrays,
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_forced_windows_all_compute_correctly(layer, array, seed):
    # Not just the optimum: *every* feasible window must be functionally
    # correct when executed.
    from repro.search import evaluate_window
    rng = np.random.default_rng(seed)
    ifm = rng.integers(-2, 3, (layer.in_channels, layer.ifm_h,
                               layer.ifm_w)).astype(float)
    kernel = rng.integers(-2, 3, (layer.out_channels, layer.in_channels,
                                  layer.kernel_h, layer.kernel_w)
                          ).astype(float)
    reference = conv2d_reference(ifm, kernel)
    tested = 0
    for h in range(layer.kernel_h, layer.ifm_h + 1, 2):
        for w in range(layer.kernel_w, layer.ifm_w + 1, 2):
            sol = evaluate_window(layer, array, ParallelWindow(h=h, w=w))
            if sol is None:
                continue
            result = PIMEngine().run(sol, ifm, kernel)
            np.testing.assert_array_equal(result.ofm, reference)
            tested += 1
            if tested >= 4:
                return
