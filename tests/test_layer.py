"""Unit tests for ConvLayer geometry."""

import pytest

from repro import ConfigurationError, ConvLayer


class TestConstruction:
    def test_square_constructor(self):
        layer = ConvLayer.square(56, 3, 128, 256)
        assert (layer.ifm_h, layer.ifm_w) == (56, 56)
        assert (layer.kernel_h, layer.kernel_w) == (3, 3)
        assert (layer.in_channels, layer.out_channels) == (128, 256)

    def test_rectangular_layer(self):
        layer = ConvLayer(ifm_h=9, ifm_w=12, kernel_h=2, kernel_w=4,
                          in_channels=3, out_channels=5)
        assert layer.ofm_h == 8
        assert layer.ofm_w == 9

    def test_defaults(self):
        layer = ConvLayer.square(8, 3, 1, 1)
        assert layer.stride == 1
        assert layer.padding == 0
        assert layer.repeats == 1

    def test_kernel_larger_than_ifm_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvLayer.square(2, 3, 1, 1)

    def test_kernel_larger_than_ifm_ok_with_padding(self):
        layer = ConvLayer.square(2, 3, 1, 1, padding=1)
        assert layer.ofm_h == 2

    def test_zero_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvLayer.square(8, 3, 0, 4)

    def test_negative_padding_rejected(self):
        with pytest.raises(ConfigurationError):
            ConvLayer.square(8, 3, 1, 1, padding=-1)

    def test_frozen(self):
        layer = ConvLayer.square(8, 3, 1, 1)
        with pytest.raises(AttributeError):
            layer.ifm_h = 10


class TestGeometry:
    def test_ofm_stride1(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        assert (layer.ofm_h, layer.ofm_w) == (12, 12)
        assert layer.num_windows == 144

    def test_ofm_stride2(self):
        layer = ConvLayer.square(224, 7, 3, 64, stride=2, padding=3)
        assert (layer.ofm_h, layer.ofm_w) == (112, 112)

    def test_ofm_stride2_no_padding(self):
        layer = ConvLayer.square(8, 2, 1, 1, stride=2)
        assert layer.ofm_h == 4

    def test_padded_dims(self):
        layer = ConvLayer.square(8, 3, 1, 1, padding=2)
        assert layer.padded_ifm_h == 12

    def test_kernel_area(self):
        assert ConvLayer.square(8, 3, 1, 1).kernel_area == 9

    def test_im2col_rows(self):
        assert ConvLayer.square(7, 3, 512, 512).im2col_rows == 4608

    def test_weight_count(self):
        layer = ConvLayer.square(8, 3, 4, 5)
        assert layer.weight_count == 9 * 4 * 5

    def test_macs(self):
        layer = ConvLayer.square(5, 3, 2, 3)
        assert layer.macs == layer.weight_count * 9


class TestFolding:
    def test_fold_identity_for_plain_layer(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        assert layer.folded() is layer

    def test_fold_resnet_stem(self):
        stem = ConvLayer.square(224, 7, 3, 64, stride=2, padding=3)
        folded = stem.folded()
        # The paper lists the stem as a stride-1 layer on 112+6=118?  No:
        # OFM is 112, so folded IFM = 112 + 7 - 1 = 118.
        assert folded.ifm_h == 118
        assert folded.stride == 1
        assert folded.padding == 0
        assert folded.num_windows == stem.num_windows

    def test_fold_preserves_window_count(self):
        layer = ConvLayer.square(56, 3, 64, 128, stride=2, padding=1)
        assert layer.folded().num_windows == layer.num_windows

    def test_fold_preserves_channels(self):
        layer = ConvLayer.square(56, 3, 64, 128, stride=2, padding=1)
        folded = layer.folded()
        assert folded.in_channels == 64
        assert folded.out_channels == 128


class TestPresentation:
    def test_shape_str(self):
        assert ConvLayer.square(56, 3, 128, 256).shape_str == "3x3x128x256"

    def test_describe_plain(self):
        text = ConvLayer.square(56, 3, 128, 256, name="conv5").describe()
        assert "conv5" in text
        assert "56x56" in text

    def test_describe_shows_stride_and_padding(self):
        text = ConvLayer.square(56, 3, 64, 64, stride=2, padding=1).describe()
        assert "s=2" in text
        assert "p=1" in text

    def test_describe_shows_repeats(self):
        text = ConvLayer.square(56, 3, 64, 64, repeats=4).describe()
        assert "x4" in text

    def test_with_name(self):
        layer = ConvLayer.square(8, 3, 1, 1).with_name("stem")
        assert layer.name == "stem"

    def test_with_repeats(self):
        layer = ConvLayer.square(8, 3, 1, 1).with_repeats(3)
        assert layer.repeats == 3

    def test_name_not_part_of_equality(self):
        a = ConvLayer.square(8, 3, 1, 1, name="a")
        b = ConvLayer.square(8, 3, 1, 1, name="b")
        assert a == b
