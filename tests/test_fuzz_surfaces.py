"""The multi-surface differential fuzzer: registry + seeded smokes.

The fuzzer's surface registry mirrors the solver registry's contract
(duplicate/unknown errors, did-you-mean hints, decorator registration),
and every built-in surface must pass its ``(seed=0, index=0)`` case
deterministically — that one seeded case per surface is the tier-1
smoke; the CI robustness job runs the full time-boxed budget.
"""

import pytest

from repro.core.types import ConfigurationError
from repro.runtime import fuzz
from repro.runtime.fuzz import (DEFAULT_SURFACES, DuplicateSurfaceError,
                                SurfaceRegistry, UnknownSurfaceError)


def _noop(rng, tmp_dir):
    return None


class TestSurfaceRegistry:
    def test_register_get_names(self):
        registry = SurfaceRegistry()
        registry.register("alpha", _noop, summary="first")
        registry.register("beta", _noop)
        assert registry.names() == ("alpha", "beta")
        assert registry.get("alpha").summary == "first"
        assert registry.get("beta").runner is _noop
        assert "alpha" in registry and "gamma" not in registry
        assert len(registry) == 2
        assert list(registry) == ["alpha", "beta"]

    def test_decorator_registration(self):
        registry = SurfaceRegistry()

        @registry.register_surface("decorated", summary="via decorator")
        def runner(rng, tmp_dir):
            return None

        assert registry.get("decorated").runner is runner

    def test_duplicate_raises_unless_replace(self):
        registry = SurfaceRegistry()
        registry.register("alpha", _noop)
        with pytest.raises(DuplicateSurfaceError):
            registry.register("alpha", _noop)
        registry.register("alpha", _noop, replace=True)

    def test_unknown_get_suggests_closest(self):
        registry = SurfaceRegistry()
        registry.register("chip_sweep", _noop)
        with pytest.raises(UnknownSurfaceError, match="chip_sweep"):
            registry.get("chip_sweeep")

    def test_unregister(self):
        registry = SurfaceRegistry()
        registry.register("alpha", _noop)
        registry.unregister("alpha")
        assert "alpha" not in registry
        with pytest.raises(UnknownSurfaceError):
            registry.unregister("alpha")

    def test_non_callable_rejected(self):
        registry = SurfaceRegistry()
        with pytest.raises(ConfigurationError):
            registry.register("bad", "not callable")

    def test_errors_are_configuration_errors(self):
        assert issubclass(UnknownSurfaceError, ConfigurationError)
        assert issubclass(DuplicateSurfaceError, ConfigurationError)


def test_builtin_surfaces_registered():
    names = DEFAULT_SURFACES.names()
    assert set(names) >= {"map", "network_sweep", "chip_sweep",
                          "chip_pareto", "backend", "grouped"}


def test_case_seed_is_deterministic_and_distinct():
    assert fuzz.case_seed(0, "map", 0) == fuzz.case_seed(0, "map", 0)
    assert fuzz.case_seed(0, "map", 0) != fuzz.case_seed(0, "map", 1)
    assert fuzz.case_seed(0, "map", 0) != fuzz.case_seed(1, "map", 0)
    assert fuzz.case_seed(0, "map", 0) != fuzz.case_seed(0, "backend", 0)


@pytest.mark.parametrize("surface", DEFAULT_SURFACES.names())
def test_seeded_smoke_case_is_clean(surface, tmp_path):
    """One deterministic differential case per surface in tier-1."""
    assert fuzz.run_case(surface, 0, 0, tmp_path) is None


def test_run_case_unknown_surface(tmp_path):
    with pytest.raises(UnknownSurfaceError):
        fuzz.run_case("nope", 0, 0, tmp_path)


def test_main_smoke(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    assert fuzz.main(["--budget-s", "30", "--max-cases", "1",
                      "--corpus", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "ok:" in out
    for surface in DEFAULT_SURFACES.names():
        assert surface in out
    assert not list(corpus.glob("*.json")) if corpus.is_dir() else True


def test_main_surface_subset(tmp_path, capsys):
    assert fuzz.main(["--budget-s", "30", "--max-cases", "1",
                      "--surfaces", "map,grouped",
                      "--corpus", str(tmp_path / "corpus")]) == 0
    out = capsys.readouterr().out
    assert "2 surface(s)" in out


def test_main_unknown_surface_errors(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        fuzz.main(["--surfaces", "bogus",
                   "--corpus", str(tmp_path / "corpus")])
    assert excinfo.value.code == 2
