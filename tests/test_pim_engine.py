"""Integration tests: the engine's two contracts on every scheme.

1. The OFM equals the direct convolution (exact for integer data).
2. The executed cycle count equals the analytical model's count.
"""

import numpy as np
import pytest

from repro import ConvLayer, MappingError, PIMArray
from repro.core import CostParams
from repro.pim import (
    Crossbar,
    LinearADC,
    LognormalNoise,
    PIMEngine,
    conv2d_reference,
)
from repro.search import solve
from tests.conftest import random_layer_inputs

SCHEMES = ("im2col", "smd", "sdk", "vw-sdk")

CASES = [
    (ConvLayer.square(8, 3, 4, 6), PIMArray(64, 32)),
    (ConvLayer.square(10, 3, 7, 5), PIMArray(48, 16)),
    (ConvLayer.square(12, 3, 16, 12), PIMArray(128, 64)),
    (ConvLayer(ifm_h=9, ifm_w=12, kernel_h=2, kernel_w=4,
               in_channels=3, out_channels=9), PIMArray(40, 24)),
    (ConvLayer.square(7, 3, 12, 8), PIMArray(30, 10)),
    (ConvLayer.square(6, 5, 2, 3), PIMArray(50, 6)),
    (ConvLayer(ifm_h=11, ifm_w=6, kernel_h=3, kernel_w=3,
               in_channels=5, out_channels=7), PIMArray(75, 33)),
]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("layer,arr", CASES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_ofm_matches_reference(self, layer, arr, scheme, rng):
        ifm, kernel = random_layer_inputs(layer, rng)
        sol = solve(layer, arr, scheme)
        result = PIMEngine().run(sol, ifm, kernel)
        np.testing.assert_array_equal(result.ofm,
                                      conv2d_reference(ifm, kernel))

    @pytest.mark.parametrize("layer,arr", CASES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_cycles_match_analytical(self, layer, arr, scheme, rng):
        ifm, kernel = random_layer_inputs(layer, rng)
        sol = solve(layer, arr, scheme)
        assert PIMEngine().run(sol, ifm, kernel).cycles == sol.cycles

    def test_padded_layer(self, rng):
        layer = ConvLayer.square(8, 3, 3, 4, padding=1)
        ifm, kernel = random_layer_inputs(layer, rng)
        sol = solve(layer, PIMArray(64, 32), "vw-sdk")
        result = PIMEngine().run(sol, ifm, kernel)
        np.testing.assert_array_equal(
            result.ofm, conv2d_reference(ifm, kernel, padding=1))

    def test_real_vgg_layer_downscaled(self, rng):
        # VGG-13 layer-5 shape at reduced IFM/channels, still tiled.
        layer = ConvLayer.square(14, 3, 40, 24)
        arr = PIMArray(128, 64)
        ifm, kernel = random_layer_inputs(layer, rng, -2, 3)
        for scheme in SCHEMES:
            sol = solve(layer, arr, scheme)
            result = PIMEngine().run(sol, ifm, kernel)
            np.testing.assert_array_equal(result.ofm,
                                          conv2d_reference(ifm, kernel))


class TestActivityCounters:
    def test_rows_and_cols_counted(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        arr = PIMArray(64, 32)
        ifm, kernel = random_layer_inputs(layer, rng)
        sol = solve(layer, arr, "im2col")
        result = PIMEngine().run(sol, ifm, kernel)
        assert result.rows_driven == sol.cycles * layer.im2col_rows
        assert result.cols_read == sol.cycles * layer.out_channels

    def test_active_cells_match_utilization(self, rng):
        from repro.core.utilization import utilization_report
        layer = ConvLayer.square(10, 3, 7, 5)
        arr = PIMArray(48, 16)
        sol = solve(layer, arr, "vw-sdk")
        ifm, kernel = random_layer_inputs(layer, rng)
        result = PIMEngine().run(sol, ifm, kernel)
        rep = utilization_report(sol)
        expected = sol.breakdown.n_pw * sum(t.cells_used for t in rep.tiles)
        assert result.active_cells == expected

    def test_energy_positive_and_latency_scales(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        ifm, kernel = random_layer_inputs(layer, rng)
        sol = solve(layer, PIMArray(64, 32), "vw-sdk")
        result = PIMEngine().run(sol, ifm, kernel)
        assert result.energy_nj() > 0
        fast = result.latency_us(CostParams(cycle_time_ns=10))
        slow = result.latency_us(CostParams(cycle_time_ns=100))
        assert slow == pytest.approx(10 * fast)

    def test_programmings_counted(self, rng):
        layer = ConvLayer.square(10, 3, 7, 5)
        sol = solve(layer, PIMArray(48, 16), "vw-sdk")
        ifm, kernel = random_layer_inputs(layer, rng)
        result = PIMEngine().run(sol, ifm, kernel)
        assert result.programmings == sol.breakdown.tiles_per_position

    def test_trace_recording(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        sol = solve(layer, PIMArray(64, 32), "vw-sdk")
        ifm, kernel = random_layer_inputs(layer, rng)
        result = PIMEngine(record_trace=True).run(sol, ifm, kernel)
        assert result.trace is not None
        assert result.trace.total_cycles == result.cycles
        summary = result.trace.summary()
        assert summary["rows_driven"] == result.rows_driven

    def test_trace_off_by_default(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        sol = solve(layer, PIMArray(64, 32), "vw-sdk")
        ifm, kernel = random_layer_inputs(layer, rng)
        assert PIMEngine().run(sol, ifm, kernel).trace is None


class TestNonIdealExecution:
    def test_lognormal_noise_perturbs_output(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        arr = PIMArray(64, 32)
        ifm, kernel = random_layer_inputs(layer, rng)
        sol = solve(layer, arr, "vw-sdk")
        xbar = Crossbar(arr, noise=LognormalNoise(0.2), seed=3)
        noisy = PIMEngine(crossbar=xbar).run(sol, ifm, kernel)
        clean = conv2d_reference(ifm, kernel)
        assert not np.array_equal(noisy.ofm, clean)
        # Still correlated with the true output.
        corr = np.corrcoef(noisy.ofm.ravel(), clean.ravel())[0, 1]
        assert corr > 0.9

    def test_adc_quantisation_bounded_error(self, rng):
        layer = ConvLayer.square(8, 3, 2, 3)
        arr = PIMArray(64, 32)
        ifm, kernel = random_layer_inputs(layer, rng, -2, 3)
        sol = solve(layer, arr, "im2col")
        adc = LinearADC(bits=12, full_scale=512.0)
        xbar = Crossbar(arr, adc=adc)
        result = PIMEngine(crossbar=xbar).run(sol, ifm, kernel)
        clean = conv2d_reference(ifm, kernel)
        assert np.abs(result.ofm - clean).max() <= adc.step

    def test_engine_rejects_small_crossbar(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        sol = solve(layer, PIMArray(64, 32), "vw-sdk")
        ifm, kernel = random_layer_inputs(layer, rng)
        with pytest.raises(MappingError):
            PIMEngine(crossbar=Crossbar(PIMArray(16, 16))).run(
                sol, ifm, kernel)


class TestInputValidation:
    def test_wrong_ifm_shape(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        sol = solve(layer, PIMArray(64, 32), "im2col")
        with pytest.raises(Exception):
            PIMEngine().run(sol, np.zeros((4, 9, 8)), np.zeros((6, 4, 3, 3)))

    def test_wrong_kernel_shape(self, rng):
        layer = ConvLayer.square(8, 3, 4, 6)
        sol = solve(layer, PIMArray(64, 32), "im2col")
        with pytest.raises(Exception):
            PIMEngine().run(sol, np.zeros((4, 8, 8)), np.zeros((6, 4, 3, 2)))

    def test_rejects_unknown_mapping_type(self):
        with pytest.raises(Exception):
            PIMEngine().run("not-a-plan", np.zeros((1, 4, 4)),
                            np.zeros((1, 1, 3, 3)))
