"""End-to-end PIM fidelity replay: planning meets the functional stack.

The 4-D frontier's semantics rest on two contracts pinned here:

* **bit-exactness** — replaying any ``chip_pareto`` design point's
  per-stage solutions through the functional
  :class:`~repro.pim.engine.PIMEngine` under
  :class:`~repro.pim.noise.NoNoise` reproduces the
  :mod:`repro.pim.reference` direct convolution exactly, for every
  golden Table-I frontier point and for hypothesis-drawn input seeds;
* **monotone degradation** — the attached ``accuracy_proxy`` is 1.0
  exactly when noise-free and non-increasing as the
  :class:`~repro.pim.noise.LognormalNoise` sigma grows.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.engine import MappingEngine
from repro.core import ConvLayer, PIMArray
from repro.core.types import ConfigurationError
from repro.dse import chip_pareto
from repro.networks import get_network
from repro.pim import (FidelitySpec, LognormalNoise, NoNoise, StuckCells,
                       replay_point, replay_stage)

FIXTURES = Path(__file__).parent / "fixtures"

#: The square ladder the golden chip_pareto fixtures sweep.
SIDES = (128, 256, 512)
NETWORKS = ("resnet18", "vgg13")

SIGMA_LADDER = (0.0, 0.05, 0.1, 0.2, 0.4)


def _distinct_plans(front):
    """One representative per distinct per-stage solution tuple."""
    seen, plans = set(), []
    for point in front:
        key = tuple(id(s) for s in point.solutions)
        if key not in seen:
            seen.add(key)
            plans.append(point)
    return plans


@pytest.fixture(scope="module")
def engine():
    return MappingEngine()


# ----------------------------------------------------------------------
# Golden design points: NoNoise replay is bit-exact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", NETWORKS)
def test_golden_points_replay_bit_exact(name, engine):
    """Every golden frontier point's plan replays exactly (NoNoise)."""
    golden = json.loads(
        (FIXTURES / f"chip_pareto_{name}.json").read_text())
    front = chip_pareto(get_network(name),
                        [PIMArray.square(side) for side in SIDES],
                        engine=engine)
    assert len(front) == len(golden)  # same points the fixture pins
    for point in _distinct_plans(front):
        report = engine.point_fidelity(point.solutions)
        assert report.exact
        assert report.accuracy_proxy == 1.0
        assert report.error_norm == 0.0


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_golden_resnet_replay_exact_for_any_input_seed(seed):
    """Bit-exactness is input-independent: hypothesis draws the seed."""
    engine = MappingEngine()
    front = chip_pareto(get_network("resnet18"),
                        [PIMArray.square(side) for side in SIDES],
                        engine=engine)
    for point in _distinct_plans(front):
        report = replay_point(point, seed=seed)
        assert report.exact and report.accuracy_proxy == 1.0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 20),
       stage=st.integers(min_value=0, max_value=7))
def test_single_stage_replay_exact(seed, stage, engine):
    solution = engine.solve(ConvLayer.square(10, 3, 8, 8),
                            PIMArray.square(128), "vw-sdk")
    fidelity = replay_stage(solution, seed=seed, stage=stage)
    assert fidelity.exact
    assert fidelity.nrmse == 0.0


# ----------------------------------------------------------------------
# accuracy_proxy semantics: perfect when ideal, monotone in sigma
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_plan(engine):
    layers = [ConvLayer.square(12, 3, 8, 16), ConvLayer.square(8, 3, 16, 8)]
    return [engine.solve(layer, PIMArray.square(128), "vw-sdk")
            for layer in layers]


def test_no_noise_scores_perfect(small_plan):
    report = replay_point(small_plan, noise=NoNoise())
    assert report.exact
    assert report.accuracy_proxy == 1.0
    assert report.nrmse == 0.0


def test_zero_sigma_and_zero_stuck_score_perfect(small_plan):
    assert replay_point(small_plan,
                        noise=LognormalNoise(0.0)).accuracy_proxy == 1.0
    assert replay_point(small_plan,
                        noise=StuckCells(0.0)).accuracy_proxy == 1.0


@pytest.mark.parametrize("seed", (0, 1, 2, 7))
def test_accuracy_proxy_monotone_in_sigma(small_plan, seed):
    proxies = [replay_point(small_plan, noise=LognormalNoise(sigma),
                            seed=seed).accuracy_proxy
               for sigma in SIGMA_LADDER]
    assert proxies[0] == 1.0
    for lo, hi in zip(proxies[1:], proxies):
        assert lo <= hi
    assert proxies[-1] < 1.0  # heavy noise really degrades


def test_noisy_replay_not_exact_but_scored(small_plan):
    report = replay_point(small_plan, noise=LognormalNoise(0.3), seed=0)
    assert not report.exact
    assert 0.0 < report.accuracy_proxy < 1.0
    assert report.error_norm > 0.0
    assert report.snr_db < float("inf")


# ----------------------------------------------------------------------
# FidelitySpec coercion + engine memoization
# ----------------------------------------------------------------------
def test_fidelity_spec_coercion():
    assert FidelitySpec.of(None).noise == NoNoise()
    assert FidelitySpec.of(True).noise == NoNoise()
    assert FidelitySpec.of(0).noise == NoNoise()
    assert FidelitySpec.of(0.1).noise == LognormalNoise(0.1)
    spec = FidelitySpec(noise=StuckCells(0.2), seed=3)
    assert FidelitySpec.of(spec) is spec
    assert FidelitySpec.of(StuckCells(0.2)).noise == StuckCells(0.2)


def test_fidelity_spec_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        FidelitySpec.of(-0.5)
    with pytest.raises(ConfigurationError):
        FidelitySpec.of("not a noise model")
    with pytest.raises(ConfigurationError):
        FidelitySpec(seed=-1)


def test_point_fidelity_empty_plan_rejected(engine):
    with pytest.raises(ConfigurationError):
        engine.point_fidelity([])


def test_point_fidelity_memoized(engine, small_plan):
    first = engine.point_fidelity(small_plan, LognormalNoise(0.1))
    second = engine.point_fidelity(small_plan, LognormalNoise(0.1))
    assert second is first  # served from the sweep memo
    other = engine.point_fidelity(small_plan, LognormalNoise(0.2))
    assert other is not first  # the noise model is part of the key


# ----------------------------------------------------------------------
# chip_pareto(fidelity=...) integration
# ----------------------------------------------------------------------
def test_chip_pareto_attaches_accuracy_proxy(engine):
    front = chip_pareto(get_network("resnet18"), [PIMArray.square(512)],
                        fidelity=True, engine=engine)
    assert front
    assert all(point.accuracy_proxy == 1.0 for point in front)


def test_chip_pareto_without_fidelity_leaves_proxy_none(engine):
    front = chip_pareto(get_network("resnet18"), [PIMArray.square(512)],
                        engine=engine)
    assert all(point.accuracy_proxy is None for point in front)


def test_chip_pareto_noisy_fidelity_scores_below_one(engine):
    front = chip_pareto(get_network("resnet18"), [PIMArray.square(512)],
                        fidelity=LognormalNoise(0.2), engine=engine)
    assert all(0.0 < point.accuracy_proxy < 1.0 for point in front)
