"""Unit tests for the stride/padding generalisation."""

import pytest

from repro import ConvLayer, MappingError, PIMArray
from repro.core.strided import (
    StridedWindow,
    iter_strided_candidates,
    search_strided,
    strided_breakdown,
    strided_im2col_breakdown,
)
from repro.search import vwsdk_solution


class TestStridedWindow:
    def test_pixel_window_stride1(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        win = StridedWindow(nw_h=1, nw_w=2)
        assert str(win.pixel_window(layer)) == "4x3"

    def test_pixel_window_stride2(self):
        layer = ConvLayer.square(14, 3, 8, 8, stride=2)
        win = StridedWindow(nw_h=2, nw_w=2)
        pixel = win.pixel_window(layer)
        assert (pixel.h, pixel.w) == (5, 5)   # 3 + (2-1)*2

    def test_windows_inside(self):
        assert StridedWindow(nw_h=2, nw_w=3).windows_inside == 6

    def test_validation(self):
        with pytest.raises(Exception):
            StridedWindow(nw_h=0, nw_w=1)


class TestStride1Equivalence:
    @pytest.mark.parametrize("ifm,k,ic,oc,rows,cols", [
        (14, 3, 256, 256, 512, 512),
        (28, 3, 128, 128, 512, 512),
        (10, 3, 3, 8, 64, 16),
        (12, 5, 7, 9, 128, 64),
    ])
    def test_matches_paper_search(self, ifm, k, ic, oc, rows, cols):
        layer = ConvLayer.square(ifm, k, ic, oc)
        arr = PIMArray(rows, cols)
        assert (search_strided(layer, arr).cycles
                == vwsdk_solution(layer, arr).cycles)

    def test_im2col_breakdown_matches(self):
        layer = ConvLayer.square(7, 3, 512, 512)
        arr = PIMArray.square(512)
        assert strided_im2col_breakdown(layer, arr).total == 225


class TestStridedModel:
    def test_resnet_stem_search(self, array512):
        stem = ConvLayer.square(224, 7, 3, 64, stride=2, padding=3)
        sol = search_strided(stem, array512)
        assert sol.cycles < stem.num_windows  # beats 1 window/cycle
        assert sol.window.windows_inside > 1

    def test_stride2_breakdown_values(self):
        layer = ConvLayer.square(8, 2, 1, 1, stride=2)   # 4x4 windows
        arr = PIMArray(64, 16)
        bd = strided_breakdown(layer, arr, StridedWindow(nw_h=2, nw_w=2))
        # PW spans 4x4 pixels; 4 windows/PW; grid 2x2 positions.
        assert bd.n_pw == 4
        assert bd.total == 4

    def test_stride2_im2col_window_count(self):
        layer = ConvLayer.square(8, 2, 1, 1, stride=2)
        bd = strided_im2col_breakdown(layer, PIMArray(64, 16))
        assert bd.n_pw == 16

    def test_pixel_overflow_raises(self):
        layer = ConvLayer.square(8, 3, 4, 4, stride=2)
        with pytest.raises(MappingError):
            strided_breakdown(layer, PIMArray.square(512),
                              StridedWindow(nw_h=4, nw_w=4))

    def test_row_overflow_raises(self):
        layer = ConvLayer.square(14, 3, 64, 64)
        with pytest.raises(MappingError):
            strided_breakdown(layer, PIMArray(8, 512),
                              StridedWindow(nw_h=2, nw_w=2))

    def test_padding_enlarges_search_space(self):
        bare = ConvLayer.square(7, 3, 16, 16)
        padded = ConvLayer.square(7, 3, 16, 16, padding=1)
        arr = PIMArray(128, 64)
        assert (search_strided(padded, arr).cycles
                >= search_strided(bare, arr).cycles)

    def test_candidate_iteration_skips_1x1(self):
        layer = ConvLayer.square(8, 3, 4, 4)
        assert all(c.windows_inside > 1
                   for c in iter_strided_candidates(layer))

    def test_solution_exposes_pixel_window(self, array512):
        stem = ConvLayer.square(224, 7, 3, 64, stride=2, padding=3)
        sol = search_strided(stem, array512)
        pixel = sol.pixel_window
        assert pixel.h >= stem.kernel_h
        assert pixel.w >= stem.kernel_w

    def test_folding_is_optimistic_for_strided_layers(self, array512):
        # The paper folds strided layers to stride-1 equivalents; a
        # stride-s window group really spans K + (nw-1)*s pixels, so the
        # native (exact) search can never beat the folded estimate.
        stem = ConvLayer.square(224, 7, 3, 64, stride=2, padding=3)
        native = search_strided(stem, array512).cycles
        folded = search_strided(stem.folded(), array512).cycles
        assert native >= folded

    def test_folding_gap_example(self):
        # A concrete case where the folded view understates cycles.
        layer = ConvLayer.square(48, 3, 64, 64, stride=2, padding=1)
        arr = PIMArray(256, 256)
        native = search_strided(layer, arr).cycles
        folded = search_strided(layer.folded(), arr).cycles
        assert native > folded
