"""Tests for the unified mapping API: registry, engine, envelopes."""

import json

import pytest

from repro.api import (
    BatchRequest,
    BatchResult,
    DEFAULT_REGISTRY,
    DuplicateSchemeError,
    MappingEngine,
    MappingRequest,
    MappingResponse,
    SolverRegistry,
    UnknownSchemeError,
    default_engine,
)
from repro.core import ConvLayer, PIMArray
from repro.networks import resnet18, vgg16
from repro.search import SCHEMES, im2col_solution, solve

ARRAY = PIMArray.square(512)
RESNET_L4 = ConvLayer.square(14, 3, 256, 256)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(DEFAULT_REGISTRY.names()) == {"im2col", "smd", "sdk",
                                                 "vw-sdk"}

    def test_names_are_stable_and_complete(self):
        # Registration order follows module import order; the set is
        # what matters for dispatch.
        assert len(DEFAULT_REGISTRY.names()) == 4
        for name in DEFAULT_REGISTRY.names():
            assert callable(DEFAULT_REGISTRY.solver(name))

    def test_unknown_scheme_lists_known(self):
        with pytest.raises(UnknownSchemeError, match="unknown scheme"):
            DEFAULT_REGISTRY.get("magic")

    def test_unknown_scheme_did_you_mean(self):
        with pytest.raises(UnknownSchemeError,
                           match="did you mean 'vw-sdk'"):
            DEFAULT_REGISTRY.get("vw-skd")

    def test_unknown_scheme_is_value_error(self):
        # Legacy callers catch ValueError.
        with pytest.raises(ValueError):
            DEFAULT_REGISTRY.solver("nope")

    def test_duplicate_registration_rejected(self):
        registry = SolverRegistry()
        registry.register("x", im2col_solution)
        with pytest.raises(DuplicateSchemeError, match="already registered"):
            registry.register("x", im2col_solution)

    def test_duplicate_with_replace_allowed(self):
        registry = SolverRegistry()
        registry.register("x", im2col_solution)
        registry.register("x", im2col_solution, replace=True,
                          summary="second")
        assert registry.get("x").summary == "second"

    def test_decorator_registers(self):
        registry = SolverRegistry()

        @registry.register_scheme("mine", capabilities=("search",))
        def mine(layer, array):
            """My scheme."""
            return im2col_solution(layer, array)

        info = registry.get("mine")
        assert info.solver is mine
        assert info.capabilities == frozenset({"search"})
        assert info.summary == "My scheme."

    def test_capability_filter(self):
        assert "vw-sdk" in DEFAULT_REGISTRY.names("search")
        assert "im2col" not in DEFAULT_REGISTRY.names("search")
        assert "im2col" in DEFAULT_REGISTRY.names("baseline")

    def test_rejects_non_callable(self):
        with pytest.raises(ValueError, match="callable"):
            SolverRegistry().register("bad", 42)


class TestDeprecatedSchemesView:
    def test_getitem_and_iteration(self):
        assert SCHEMES["vw-sdk"] is DEFAULT_REGISTRY.solver("vw-sdk")
        assert sorted(SCHEMES) == ["im2col", "sdk", "smd", "vw-sdk"]
        assert len(SCHEMES) == len(DEFAULT_REGISTRY)

    def test_missing_key_raises_keyerror(self):
        with pytest.raises(KeyError):
            SCHEMES["magic"]

    def test_view_is_live(self):
        DEFAULT_REGISTRY.register("temp-scheme", im2col_solution)
        try:
            assert "temp-scheme" in SCHEMES
            assert SCHEMES["temp-scheme"] is im2col_solution
        finally:
            DEFAULT_REGISTRY.unregister("temp-scheme")
        assert "temp-scheme" not in SCHEMES

    def test_replaced_solver_invalidates_engine_memo(self):
        # Re-registering a scheme's solver must not serve solutions the
        # old solver computed (registry versioning feeds the memo key).
        from dataclasses import replace as dc_replace
        from repro.search import smd_solution

        registry = SolverRegistry()
        registry.register("mine", im2col_solution)
        engine = MappingEngine(registry=registry)
        first = engine.solve(RESNET_L4, ARRAY, "mine")
        assert first.scheme == "im2col"

        def rebranded(layer, array):
            return dc_replace(smd_solution(layer, array), scheme="mine-v2")

        registry.register("mine", rebranded, replace=True)
        second = engine.solve(RESNET_L4, ARRAY, "mine")
        assert second.scheme == "mine-v2"
        # And the new solver's result is itself memoized.
        assert engine.solve(RESNET_L4, ARRAY, "mine").scheme == "mine-v2"
        assert engine.stats.misses == 2
        assert engine.stats.hits == 1


class TestRequests:
    def test_cache_key_ignores_presentation_metadata(self):
        a = MappingRequest(RESNET_L4, ARRAY, "vw-sdk")
        b = MappingRequest(RESNET_L4.with_name("conv4_2").with_repeats(2),
                           ARRAY, "vw-sdk", tag="other")
        assert a.cache_key == b.cache_key

    def test_cache_key_sees_geometry_and_scheme(self):
        base = MappingRequest(RESNET_L4, ARRAY, "vw-sdk")
        assert base.cache_key != MappingRequest(
            RESNET_L4, ARRAY, "im2col").cache_key
        assert base.cache_key != MappingRequest(
            RESNET_L4, PIMArray.square(256), "vw-sdk").cache_key
        assert base.cache_key != MappingRequest(
            ConvLayer.square(28, 3, 256, 256), ARRAY, "vw-sdk").cache_key

    def test_request_round_trip(self):
        req = MappingRequest(RESNET_L4.with_name("conv4"), ARRAY, "sdk",
                             tag="t1")
        again = MappingRequest.from_dict(
            json.loads(json.dumps(req.to_dict())))
        assert again == req
        assert again.layer.name == "conv4"

    def test_batch_from_network(self):
        batch = BatchRequest.from_network(resnet18(), ARRAY,
                                          schemes=("im2col", "vw-sdk"))
        assert len(batch) == 2 * len(resnet18())
        assert batch[0].scheme == "im2col"
        assert batch[-1].scheme == "vw-sdk"

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchRequest(requests=())


class TestEngineCache:
    def test_hit_miss_accounting(self):
        engine = MappingEngine()
        engine.solve(RESNET_L4, ARRAY, "vw-sdk")
        assert (engine.stats.hits, engine.stats.misses) == (0, 1)
        engine.solve(RESNET_L4, ARRAY, "vw-sdk")
        assert (engine.stats.hits, engine.stats.misses) == (1, 1)
        engine.solve(RESNET_L4, ARRAY, "im2col")   # different scheme
        assert (engine.stats.hits, engine.stats.misses) == (1, 2)
        assert engine.stats.solver_calls == 2

    def test_hit_rebinds_layer_metadata(self):
        engine = MappingEngine()
        engine.solve(RESNET_L4.with_name("conv4_1"), ARRAY, "vw-sdk")
        sol = engine.solve(RESNET_L4.with_name("conv4_2").with_repeats(3),
                           ARRAY, "vw-sdk")
        assert engine.stats.hits == 1
        assert sol.layer.name == "conv4_2"
        assert sol.layer.repeats == 3

    def test_cache_clear(self):
        engine = MappingEngine()
        engine.solve(RESNET_L4, ARRAY, "vw-sdk")
        assert engine.cache_len == 1
        engine.cache_clear()
        assert engine.cache_len == 0
        engine.solve(RESNET_L4, ARRAY, "vw-sdk")
        assert engine.stats.misses == 2

    def test_cache_disabled(self):
        engine = MappingEngine(cache_size=0)
        engine.solve(RESNET_L4, ARRAY, "vw-sdk")
        engine.solve(RESNET_L4, ARRAY, "vw-sdk")
        assert engine.stats.hits == 0
        assert engine.stats.misses == 2

    def test_lru_eviction(self):
        engine = MappingEngine(cache_size=2)
        layers = [ConvLayer.square(ifm, 3, 8, 8) for ifm in (8, 9, 10)]
        for layer in layers:
            engine.solve(layer, ARRAY, "im2col")
        assert engine.cache_len == 2
        assert engine.stats.evictions == 1
        engine.solve(layers[0], ARRAY, "im2col")   # evicted -> miss
        assert engine.stats.misses == 4

    def test_unknown_scheme(self):
        engine = MappingEngine()
        with pytest.raises(ValueError, match="unknown scheme"):
            engine.solve(RESNET_L4, ARRAY, "magic")


class TestEngineCorrectness:
    """The engine must reproduce the paper's Table I numbers exactly."""

    def test_resnet_conv4x_paper_row(self):
        engine = MappingEngine()
        sol = engine.solve(RESNET_L4, ARRAY, "vw-sdk")
        assert str(sol.window) == "4x3"
        assert sol.cycles == 504

    @pytest.mark.parametrize("scheme", ["im2col", "smd", "sdk", "vw-sdk"])
    def test_matches_direct_solver_for_all_schemes(self, scheme):
        engine = MappingEngine()
        direct = DEFAULT_REGISTRY.solver(scheme)(RESNET_L4, ARRAY)
        via_engine = engine.solve(RESNET_L4, ARRAY, scheme)
        assert via_engine == direct
        # And again from cache:
        assert engine.solve(RESNET_L4, ARRAY, scheme) == direct

    def test_legacy_solve_routes_through_shared_engine(self):
        before = default_engine().stats
        solve(ConvLayer.square(14, 3, 256, 256), ARRAY, "vw-sdk")
        solve(ConvLayer.square(14, 3, 256, 256), ARRAY, "vw-sdk")
        after = default_engine().stats
        assert after.requests - before.requests == 2
        assert after.hits > before.hits   # at least the second was a hit


class TestBatch:
    def test_preserves_request_order(self):
        layers = list(resnet18())
        requests = [MappingRequest(layer, ARRAY, scheme)
                    for layer in reversed(layers)
                    for scheme in ("vw-sdk", "im2col")]
        result = MappingEngine().map_batch(requests)
        assert len(result) == len(requests)
        for request, response in zip(requests, result):
            assert response.request == request
            assert response.solution.scheme == request.scheme
            assert response.solution.layer == request.layer

    def test_intra_batch_duplicates_solved_once(self):
        engine = MappingEngine()
        requests = [MappingRequest(RESNET_L4, ARRAY, "vw-sdk")] * 4
        result = engine.map_batch(requests)
        assert result.stats.misses == 1
        assert result.stats.hits == 3
        assert [resp.cached for resp in result] == [False, True, True, True]
        assert len({resp.cycles for resp in result}) == 1

    def test_cached_rerun_uses_strictly_fewer_solver_calls(self):
        # Acceptance criterion: a re-map of resnet18 + vgg16 across all
        # schemes must invoke strictly fewer solvers than the uncached
        # run, verified via engine cache statistics.
        engine = MappingEngine()
        schemes = tuple(engine.schemes())
        requests = []
        for network in (resnet18(), vgg16()):
            requests.extend(BatchRequest.from_network(network, ARRAY,
                                                      schemes=schemes))
        cold = engine.map_batch(requests)
        warm = engine.map_batch(requests)
        assert cold.stats.solver_calls > 0
        assert warm.stats.solver_calls < cold.stats.solver_calls
        assert warm.stats.solver_calls == 0
        assert warm.stats.hits == len(requests)
        # Identical solutions either way, in order.
        assert [r.cycles for r in warm] == [r.cycles for r in cold]

    def test_batch_accepts_batchrequest_and_workers(self):
        batch = BatchRequest.from_network(resnet18(), ARRAY,
                                          schemes=("vw-sdk",))
        serial = MappingEngine().map_batch(batch, max_workers=1)
        parallel = MappingEngine(max_workers=4).map_batch(batch)
        assert [r.cycles for r in serial] == [r.cycles for r in parallel]

    def test_batch_unknown_scheme_fails_before_solving(self):
        engine = MappingEngine()
        requests = [MappingRequest(RESNET_L4, ARRAY, "vw-sdk"),
                    MappingRequest(RESNET_L4, ARRAY, "magic")]
        with pytest.raises(ValueError, match="unknown scheme"):
            engine.map_batch(requests)
        assert engine.stats.solver_calls == 0

    def test_batch_survives_mid_batch_eviction(self):
        # A tiny cache: the batch's own inserts evict the pre-cached
        # entry before the response loop reads it back; the engine must
        # re-solve, not crash.
        engine = MappingEngine(cache_size=2)
        pre = ConvLayer.square(8, 3, 4, 4)
        engine.solve(pre, ARRAY, "im2col")
        layers = [pre] + [ConvLayer.square(ifm, 3, 4, 4)
                          for ifm in (9, 10, 11)]
        result = engine.map_batch(
            [MappingRequest(layer, ARRAY, "im2col") for layer in layers])
        assert [r.solution.layer for r in result] == layers
        assert all(r.cycles > 0 for r in result)

    def test_network_totals_via_batch(self):
        result = MappingEngine().map_batch(
            BatchRequest.from_network(resnet18(), ARRAY,
                                      schemes=("vw-sdk",)))
        assert result.total_cycles == 4294   # paper Table I total


class TestEnvelopes:
    def test_mapping_response_json_round_trip(self):
        engine = MappingEngine()
        response = engine.map(MappingRequest(
            RESNET_L4.with_name("conv4_x"), ARRAY, "vw-sdk", tag="req-7"))
        again = MappingResponse.from_json(response.to_json())
        assert again.request == response.request
        assert again.solution == response.solution
        assert again.cached == response.cached
        assert again.cycles == 504
        assert str(again.solution.window) == "4x3"

    def test_batch_result_json_round_trip(self):
        engine = MappingEngine()
        result = engine.map_batch(BatchRequest.from_network(
            resnet18(), ARRAY, schemes=("im2col", "vw-sdk")))
        again = BatchResult.from_json(result.to_json())
        assert len(again) == len(result)
        assert again.total_cycles == result.total_cycles
        assert again.stats.misses == result.stats.misses
        assert [r.request for r in again] == [r.request for r in result]

    def test_envelope_is_plain_json(self):
        response = MappingEngine().map(
            MappingRequest(RESNET_L4, ARRAY, "vw-sdk"))
        payload = json.loads(response.to_json())
        assert payload["solution"]["cycles"] == 504
        assert payload["solution"]["table_cell"].startswith("4x3")
        assert payload["cache"]["hit"] is False

    def test_envelope_layer_dict_matches_network_file_format(self):
        # One wire format for layers everywhere: a layer dict from an
        # API envelope is a valid `vwsdk network --file` layer entry.
        from repro.networks.io import network_from_dict
        response = MappingEngine().map(MappingRequest(
            RESNET_L4.with_name("conv4"), ARRAY, "vw-sdk"))
        entry = json.loads(response.to_json())["request"]["layer"]
        net = network_from_dict({"name": "rt", "layers": [entry]})
        assert net[0] == RESNET_L4
        assert net[0].name == "conv4"

    def test_by_scheme_grouping(self):
        result = MappingEngine().map_batch(BatchRequest.from_network(
            resnet18(), ARRAY, schemes=("im2col", "vw-sdk")))
        grouped = result.by_scheme()
        assert set(grouped) == {"im2col", "vw-sdk"}
        assert len(grouped["vw-sdk"]) == len(resnet18())


class TestConsumersShareEngine:
    def test_map_network_accepts_engine(self):
        from repro.networks import map_network
        engine = MappingEngine()
        report = map_network(resnet18(), ARRAY, "vw-sdk", engine=engine)
        assert report.total_cycles == 4294
        assert engine.stats.misses == len(resnet18())
        map_network(resnet18(), ARRAY, "vw-sdk", engine=engine)
        assert engine.stats.misses == len(resnet18())   # all cached now

    def test_plan_pipeline_accepts_engine(self):
        from repro.chip import ChipConfig, plan_pipeline
        engine = MappingEngine()
        chip = ChipConfig(ARRAY, 64)
        plan_pipeline(resnet18(), chip, "vw-sdk", engine=engine)
        first = engine.stats.solver_calls
        plan_pipeline(resnet18(), chip, "vw-sdk", engine=engine)
        assert engine.stats.solver_calls == first


class TestWorkspaceChurn:
    """Regression: `_ws_all` must not pin dead threads' workspaces.

    The engine once held strong references to every thread's sweep
    Workspace forever; a server spawning short-lived threads leaked
    one arena per thread.  Now the registry holds weakrefs and a
    per-thread lease folds the counters into retired totals when its
    thread dies.
    """

    def test_dead_threads_release_their_workspaces(self):
        import gc
        import threading

        engine = MappingEngine()
        arrays = [PIMArray.square(side) for side in (128, 256)]

        def churn():
            for _ in range(3):
                engine.sweep_cycles([RESNET_L4], arrays, "vw-sdk")

        for _ in range(8):
            thread = threading.Thread(target=churn)
            thread.start()
            thread.join()
        gc.collect()  # finalize the dead threads' leases
        assert engine.live_workspaces() == 0
        # ... without losing their telemetry: 8 threads x 3 sweeps
        # reused the arena and the peak survives retirement.
        reuses, _grows, peak_bytes = engine.workspace_counters()
        assert reuses > 0
        assert peak_bytes > 0

    def test_live_thread_workspace_stays_live(self):
        engine = MappingEngine()
        engine.sweep_cycles([RESNET_L4], [PIMArray.square(256)], "vw-sdk")
        assert engine.live_workspaces() == 1


class TestCoalescingDeadline:
    """Regression: a follower must never outwait its own deadline
    blocked behind a slow leader's in-flight solve."""

    @staticmethod
    def _slow_registry():
        """A registry whose scheme blocks its FIRST caller on a gate;
        later callers answer instantly (the solo-solve path)."""
        import threading

        registry = SolverRegistry()
        gate = threading.Event()
        leader_started = threading.Event()
        calls = []
        lock = threading.Lock()

        @registry.register_scheme("slowpoke")
        def slowpoke_solution(layer, array):
            """vw-sdk behind a one-shot gate."""
            with lock:
                calls.append(threading.get_ident())
                first = len(calls) == 1
            if first:
                leader_started.set()
                gate.wait(30.0)
            return solve(layer, array, "vw-sdk")

        return registry, gate, leader_started, calls

    def test_follower_deadline_expires_with_typed_error(self):
        import threading

        from repro.runtime import Deadline, DeadlineExceededError

        registry, gate, leader_started, _calls = self._slow_registry()
        engine = MappingEngine(registry=registry)
        request = MappingRequest(layer=RESNET_L4, array=ARRAY,
                                 scheme="slowpoke")
        leader_response = []
        leader = threading.Thread(
            target=lambda: leader_response.append(engine.map(request)))
        leader.start()
        try:
            assert leader_started.wait(30.0)
            with pytest.raises(DeadlineExceededError) as excinfo:
                engine.map(request, deadline=Deadline(0.05))
            assert excinfo.value.where == "engine.coalesce"
            assert "coalesced_behind" in excinfo.value.partial
        finally:
            gate.set()
            leader.join(30.0)
        # The leader was never disturbed by the follower's expiry.
        assert leader_response[0].solution.cycles == \
            solve(RESNET_L4, ARRAY, "vw-sdk").cycles

    def test_follower_clock_race_falls_back_to_solo_solve(self):
        import threading

        from repro.runtime import Deadline

        registry, gate, leader_started, calls = self._slow_registry()
        engine = MappingEngine(registry=registry)
        request = MappingRequest(layer=RESNET_L4, array=ARRAY,
                                 scheme="slowpoke")
        leader = threading.Thread(target=lambda: engine.map(request))
        leader.start()
        try:
            assert leader_started.wait(30.0)
            # A frozen clock: `event.wait(remaining)` times out while
            # the deadline itself never expires — the race between the
            # wall clock the Event sees and the monotonic budget.  The
            # follower must solo-solve rather than re-queue.
            frozen = Deadline(0.05, clock=lambda: 0.0)
            response = engine.map(request, deadline=frozen)
            assert response.cached is False
            assert len(calls) == 2       # leader + solo follower
            assert response.solution.cycles == \
                solve(RESNET_L4, ARRAY, "vw-sdk").cycles
        finally:
            gate.set()
            leader.join(30.0)
