"""Batched network lattices: bit-identical to the per-probe path.

The DSE acceptance contract: everything read off a shared
:class:`~repro.core.sweep.NetworkLattice` — per-layer cycles, network
totals, bisection answers — must equal the per-probe ``solve()`` path
exactly, on randomized layers, arrays and strides.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import MappingEngine, register_scheme, DEFAULT_REGISTRY
from repro.core import ConvLayer, PIMArray, NetworkLattice, layer_lattice
from repro.core.lattice import window_lattice
from repro.core.types import ConfigurationError
from repro.dse import smallest_square_array
from repro.networks import Network, resnet18
from repro.search import solve

# ----------------------------------------------------------------------
# Strategies: layers include strides and padding
# ----------------------------------------------------------------------

any_layers = st.builds(
    ConvLayer.square,
    st.integers(min_value=4, max_value=18),      # ifm
    st.integers(min_value=1, max_value=4),       # kernel
    st.integers(min_value=1, max_value=24),      # ic
    st.integers(min_value=1, max_value=24),      # oc
    stride=st.integers(min_value=1, max_value=3),
    padding=st.integers(min_value=0, max_value=2),
).filter(lambda l: l.kernel_h <= l.ifm_h)

arrays = st.builds(
    PIMArray,
    st.integers(min_value=8, max_value=600),     # rows
    st.integers(min_value=4, max_value=600),     # cols
)

networks = st.lists(any_layers, min_size=1, max_size=4).map(
    lambda layers: Network.from_layers("rand", layers))


# ----------------------------------------------------------------------
# LayerLattice factoring
# ----------------------------------------------------------------------

class TestLayerLattice:
    def test_with_array_equals_full_build(self):
        layer = ConvLayer.square(14, 3, 256, 256)
        array = PIMArray.square(512)
        finished = layer_lattice(layer).with_array(array)
        direct = window_lattice(layer, array)
        for field in ("feasible", "ic_t", "oc_t", "ar", "ac", "n_pw",
                      "cycles"):
            np.testing.assert_array_equal(getattr(finished, field),
                                          getattr(direct, field))

    def test_grids_shared_across_equal_geometries(self):
        a = ConvLayer.square(14, 3, 64, 64, name="conv3_1")
        b = ConvLayer.square(14, 3, 64, 64, name="conv3_2", repeats=2)
        la, lb = layer_lattice(a), layer_lattice(b)
        assert la.area is lb.area and la.n_pw is lb.n_pw
        assert la.layer is a and lb.layer is b          # metadata rebinding
        assert lb.with_array(PIMArray.square(256)).layer is b

    def test_shared_grids_are_read_only(self):
        grids = layer_lattice(ConvLayer.square(10, 3, 8, 8))
        with pytest.raises(ValueError):
            grids.area[0, 0] = 1  # repro: noqa[REP003] — proves read-only

    @given(any_layers, arrays)
    @settings(max_examples=40, deadline=None)
    def test_strided_with_array_matches_direct(self, layer, array):
        from repro.core.lattice import strided_lattice
        finished = layer_lattice(layer).with_array(array)
        direct = strided_lattice(layer, array)
        np.testing.assert_array_equal(finished.cycles, direct.cycles)
        np.testing.assert_array_equal(finished.feasible, direct.feasible)


# ----------------------------------------------------------------------
# NetworkLattice vs the per-probe solve() path
# ----------------------------------------------------------------------

class TestNetworkLattice:
    @given(networks, arrays, st.sampled_from(NetworkLattice.SUPPORTED))
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_solve(self, network, array, scheme):
        lattice = NetworkLattice.for_network(network, scheme)
        per_layer = [solve(layer, array, scheme).cycles for layer in network]
        assert lattice.layer_cycles(array).tolist() == per_layer
        assert lattice.network_cycles(array) == sum(per_layer)

    @given(networks, st.lists(arrays, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_batched_equals_sequential(self, network, probe_arrays):
        lattice = NetworkLattice.for_network(network, "vw-sdk")
        batched = lattice.cycles_for(probe_arrays)
        assert batched.tolist() == [lattice.network_cycles(a)
                                    for a in probe_arrays]

    def test_paper_total(self):
        lattice = NetworkLattice.for_network(resnet18(), "vw-sdk")
        assert lattice.network_cycles(PIMArray.square(512)) == 4294

    def test_duplicate_geometries_counted_per_occurrence(self):
        layer = ConvLayer.square(14, 3, 16, 16)
        net = Network.from_layers("dup", [layer, layer.with_name("again")])
        lattice = NetworkLattice.for_network(net, "vw-sdk")
        assert lattice.num_geometries == 1
        array = PIMArray.square(128)
        assert lattice.network_cycles(array) == 2 * solve(
            layer, array, "vw-sdk").cycles

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkLattice.for_network(resnet18(), "sdk")

    def test_empty_candidate_list(self):
        lattice = NetworkLattice.for_network(resnet18(), "vw-sdk")
        assert lattice.cycles_for([]).size == 0


# ----------------------------------------------------------------------
# Engine exposure: fast path, fallback, memoization
# ----------------------------------------------------------------------

class TestEngineSweeps:
    def test_sweep_is_memoized_per_geometry(self):
        engine = MappingEngine()
        first = engine.network_sweep(resnet18())
        assert first is not None
        assert engine.network_sweep(resnet18()) is first

    def test_non_batchable_scheme_falls_back(self):
        engine = MappingEngine()
        assert engine.network_sweep(resnet18(), "sdk") is None
        array = PIMArray.square(512)
        direct = sum(solve(layer, array, "sdk").cycles
                     for layer in resnet18())
        assert engine.network_cycles(resnet18(), array, "sdk") == direct

    def test_fallback_hits_memo_on_repeat_probes(self):
        engine = MappingEngine()
        array = PIMArray.square(512)
        engine.network_cycles(resnet18(), array, "sdk")
        before = engine.stats
        engine.network_cycles(resnet18(), array, "sdk")
        after = engine.stats
        assert after.misses == before.misses
        assert after.hits > before.hits

    def test_sweep_cycles_matches_network_cycles(self):
        engine = MappingEngine()
        probes = [PIMArray.square(s) for s in (64, 128, 256, 512)]
        for scheme in ("vw-sdk", "sdk"):
            totals = engine.sweep_cycles(resnet18(), probes, scheme)
            assert totals.tolist() == [
                engine.network_cycles(resnet18(), a, scheme) for a in probes]

    def test_replaced_solver_disables_fast_path(self):
        engine = MappingEngine()
        info = DEFAULT_REGISTRY.get("vw-sdk")
        calls = []

        def shadow(layer, array):
            calls.append(layer)
            return info.solver(layer, array)

        # A replacement that does not re-claim the "batchable"
        # capability must silently lose the fast path.
        DEFAULT_REGISTRY.register("vw-sdk", shadow, replace=True)
        try:
            assert engine.network_sweep(resnet18()) is None
            engine.network_cycles(resnet18(), PIMArray.square(512))
            assert calls  # the replacement actually ran
        finally:
            DEFAULT_REGISTRY.register(
                "vw-sdk", info.solver,
                capabilities=tuple(info.capabilities),
                summary=info.summary, replace=True)
        assert engine.network_sweep(resnet18()) is not None

    def test_unknown_scheme_fails_fast(self):
        with pytest.raises(ValueError):
            MappingEngine().network_sweep(resnet18(), "no-such-scheme")

    def test_chip_lattice_is_memoized_per_geometry(self):
        engine = MappingEngine()
        array = PIMArray.square(512)
        first = engine.chip_lattice(resnet18(), array)
        assert engine.chip_lattice(resnet18(), array) is first
        # A different array geometry gets its own lattice.
        other = engine.chip_lattice(resnet18(), PIMArray.square(256))
        assert other is not first
        assert engine.chip_lattice(resnet18(), array, "im2col") is not first

    def test_chip_sweep_matches_plan_pipeline(self):
        from repro.chip import ChipConfig, plan_pipeline
        engine = MappingEngine()
        array = PIMArray.square(512)
        counts = [23, 64, 256]
        for scheme in ("vw-sdk", "sdk"):
            sweep = engine.chip_sweep(resnet18(), array, counts, scheme)
            for index, count in enumerate(counts):
                plan = plan_pipeline(resnet18(), ChipConfig(array, count),
                                     scheme, engine=engine)
                point = sweep.outcome(index)
                assert point.bottleneck_cycles == plan.bottleneck_cycles
                assert point.arrays_used == plan.arrays_used

    def test_chip_lattice_solves_each_layer_once(self):
        engine = MappingEngine()
        array = PIMArray.square(512)
        engine.chip_lattice(resnet18(), array)
        before = engine.stats.misses
        engine.chip_sweep(resnet18(), array, [64, 128])
        assert engine.stats.misses == before  # replay, no re-solving

    def test_cache_clear_drops_chip_lattices(self):
        engine = MappingEngine()
        array = PIMArray.square(512)
        first = engine.chip_lattice(resnet18(), array)
        engine.cache_clear()
        assert engine.chip_lattice(resnet18(), array) is not first

    def test_plain_iterables_accepted_on_both_paths(self):
        engine = MappingEngine()
        layers = list(resnet18())
        array = PIMArray.square(512)
        # Generators are consumed once; bare lists lack .name metadata —
        # both must work on the fast path and the map_batch fallback.
        assert engine.network_cycles((l for l in layers), array) == 4294
        assert engine.network_cycles(layers, array, "sdk") == sum(
            solve(layer, array, "sdk").cycles for layer in layers)
        totals = engine.sweep_cycles((l for l in layers), [array], "sdk")
        assert totals.tolist() == [7240]

    def test_cache_clear_drops_sweeps(self):
        engine = MappingEngine()
        first = engine.network_sweep(resnet18())
        engine.cache_clear()
        assert engine.network_sweep(resnet18()) is not first


# ----------------------------------------------------------------------
# Bisection answers: shared lattice == per-probe reference
# ----------------------------------------------------------------------

def _reference_smallest_square(network, target, scheme, lo, hi):
    """The pre-lattice implementation: re-solve every probe."""
    engine = MappingEngine()

    def total(side):
        array = PIMArray.square(side)
        return sum(engine.solve(layer, array, scheme).cycles
                   for layer in network)

    if total(hi) > target:
        return None
    low, high = lo, hi
    while low < high:
        mid = (low + high) // 2
        if total(mid) <= target:
            high = mid
        else:
            low = mid + 1
    return PIMArray.square(low)


class TestBisectionEquivalence:
    @given(networks, st.integers(min_value=1, max_value=200000))
    @settings(max_examples=25, deadline=None)
    def test_smallest_square_array_matches_reference(self, network, target):
        from repro.dse import InfeasibleTargetError
        try:
            fast = smallest_square_array(network, target, lo=2, hi=1024)
        except InfeasibleTargetError:
            fast = None
        slow = _reference_smallest_square(network, target, "vw-sdk", 2, 1024)
        assert fast == slow

    def test_resnet_target_matches_reference(self):
        fast = smallest_square_array(resnet18(), 4294)
        slow = _reference_smallest_square(resnet18(), 4294, "vw-sdk", 8, 65536)
        assert fast == slow
