"""Tests for repro.analysis: the invariant linter and its contracts.

The fixture corpus under ``tests/analysis_fixtures/`` seeds violations
(``*_bad.py``) and near-miss clean code (``*_good.py``); every line
that must produce a finding carries an ``# expect: REPNNN`` marker.
The corpus test diffs the linter's ``(line, rule_id)`` findings against
the markers cell-for-cell, so each rule provably fires where it must
and stays silent where it must not.
"""

import re
import subprocess
import sys
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (Analyzer, DEFAULT_RULES, DuplicateRuleError,
                            Rule, RuleRegistry, UnknownRuleError,
                            parse_module)
from repro.analysis.base import rel_matches
from repro.analysis.engine import collect_files, load_config, main
from repro.analysis.project import (PaperAnchors, parse_citations,
                                    roman_to_int)
from repro.analysis import typing_gate
from repro.api.engine import MappingEngine
from repro.core.cache import freeze_arrays
from repro.core.layer import ConvLayer
from repro.core.lattice import layer_lattice
from repro.core.sweep import NetworkLattice

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

#: Rule options binding the module-scoped rules to the fixture files
#: and the doc-driven rules to the fixture documents — the corpus never
#: depends on the real tree's layout or docs wording.
FIXTURE_CONFIG = {
    "docs": {"paper-map": "paper_map.md", "cache-inventory": "inventory.md"},
    "frozen-request-discipline": {
        "modules": ["rep002_bad.py", "rep002_good.py"]},
    "dtype-discipline": {"modules": ["rep004_bad.py", "rep004_good.py"]},
    "strict-annotations": {
        "strict-prefixes": ["rep007_bad.py", "rep007_good.py"]},
}

_EXPECT_RE = re.compile(r"#\s*expect:\s*((?:REP\d+[\s,]*)+)")


def lint_fixture(name):
    analyzer = Analyzer(FIXTURES, config=FIXTURE_CONFIG)
    return analyzer.run([FIXTURES / name])


def expected_findings(name):
    """The ``(line, rule_id)`` multiset declared by ``# expect:``."""
    marked = Counter()
    source = (FIXTURES / name).read_text(encoding="utf-8")
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if match:
            for rule_id in re.findall(r"REP\d+", match.group(1)):
                marked[(lineno, rule_id)] += 1
    return marked


# ----------------------------------------------------------------------
# The fixture corpus, cell for cell
# ----------------------------------------------------------------------
FIXTURE_FILES = sorted(p.name for p in FIXTURES.glob("*.py"))


def test_fixture_corpus_is_complete():
    # One bad and one good fixture per shipped rule, plus the
    # suppression and doc-drift seeds.
    for rule in DEFAULT_RULES:
        number = rule.id.replace("REP", "").lstrip("0")
        stem = f"rep{int(rule.id[3:]):03d}"
        assert f"{stem}_bad.py" in FIXTURE_FILES, rule.id
        assert f"{stem}_good.py" in FIXTURE_FILES, rule.id
        assert number  # ids stay numeric
    assert "suppressed.py" in FIXTURE_FILES
    assert "rep001_drift.py" in FIXTURE_FILES


@pytest.mark.parametrize("name", FIXTURE_FILES)
def test_fixture_findings_match_markers(name):
    report = lint_fixture(name)
    assert not report.errors
    found = Counter((v.line, v.rule_id) for v in report.violations)
    assert found == expected_findings(name)


@pytest.mark.parametrize("rule_id", sorted(r.id for r in DEFAULT_RULES))
def test_every_rule_catches_its_seeded_violation(rule_id):
    name = f"rep{int(rule_id[3:]):03d}_bad.py"
    fired = {v.rule_id for v in lint_fixture(name).violations}
    assert rule_id in fired


def test_rep001_messages_name_the_missing_and_metadata_fields():
    messages = [v.message for v in lint_fixture("rep001_bad.py").violations]
    assert any("stride" in m and "does not cover" in m for m in messages)
    assert any("ConvLayer.name" in m and "metadata" in m for m in messages)
    assert any("lru_cache on method" in m for m in messages)
    assert any("non-frozen dataclass" in m for m in messages)


def test_rep001_doc_drift_names_the_stale_exclusions():
    messages = [v.message for v in
                lint_fixture("rep001_drift.py").violations]
    assert any("`ConvLayer.name`" in m for m in messages)
    assert any("`ConvLayer.repeats`" in m for m in messages)


def test_suppression_scopes_to_the_named_rule():
    report = lint_fixture("suppressed.py")
    # Three mutations are suppressed (by id, bare, and by rule name);
    # the fourth names a different rule, so REP003 still fires.
    assert [v.rule_id for v in report.violations] == ["REP003"]


# ----------------------------------------------------------------------
# Registry contracts (mirrors the api solver registry)
# ----------------------------------------------------------------------
class _ToyRule(Rule):
    id = "REP900"
    name = "toy-rule"
    summary = "fixture rule"

    def check(self, module, project):
        return iter(())


def test_registry_resolves_by_id_and_name():
    registry = RuleRegistry()
    rule = registry.register(_ToyRule)
    assert registry.get("REP900") is rule
    assert registry.get("toy-rule") is rule
    assert "REP900" in registry and "toy-rule" in registry
    assert len(registry) == 1


def test_registry_rejects_duplicates():
    registry = RuleRegistry()
    registry.register(_ToyRule)
    with pytest.raises(DuplicateRuleError):
        registry.register(_ToyRule)


def test_registry_unknown_rule_suggests_close_match():
    with pytest.raises(UnknownRuleError) as err:
        DEFAULT_RULES.get("cache-key-completness")
    assert "did you mean 'cache-key-completeness'" in str(err.value)


def test_registry_disable_by_id_or_name():
    names = {r.name for r in DEFAULT_RULES.rules(disable=("REP003",))}
    assert "cached-array-mutation" not in names
    assert "cache-key-completeness" in names


def test_default_registry_ships_the_documented_rules():
    assert {r.id for r in DEFAULT_RULES} >= {
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        "REP007", "REP008"}


# ----------------------------------------------------------------------
# Project facts: citations, anchors, config plumbing
# ----------------------------------------------------------------------
def test_citation_parsing_expands_ranges_lists_and_romans():
    kinds = parse_citations("eqs. 1-3 and eq. 7/8, Table I, Alg. 1")
    numbers = sorted(n for k, n, _ in kinds if k == "eq")
    assert numbers == [1, 2, 3, 7, 8]
    assert ("table", 1) in {(k, n) for k, n, _ in kinds}
    assert ("alg", 1) in {(k, n) for k, n, _ in kinds}
    assert roman_to_int("IX") == 9 and roman_to_int("xii") == 12
    assert roman_to_int("IXI") is None


def test_paper_anchors_inert_without_doc(tmp_path):
    anchors = PaperAnchors.from_doc(tmp_path / "missing.md")
    assert not anchors.present
    assert not anchors.resolves("eq", 1)


def test_rel_matches_suffix_and_directory_patterns():
    assert rel_matches("src/repro/core/lattice.py", ("core/lattice.py",))
    assert rel_matches("src/repro/api/engine.py", ("src/repro/api/",))
    assert not rel_matches("src/repro/core/lattice.py", ("chip/sweep.py",))


def test_load_config_reads_the_repo_pyproject():
    config = load_config(REPO)
    assert config.get("targets") == ["src", "tests", "benchmarks"]
    assert "tests/analysis_fixtures" in config.get("exclude", [])


def test_collect_files_excludes_the_fixture_corpus():
    rels = {p.relative_to(REPO).as_posix()
            for p in collect_files(REPO, ("tests",),
                                   ("tests/analysis_fixtures",))}
    assert "tests/test_analysis.py" in rels
    assert not any(r.startswith("tests/analysis_fixtures/") for r in rels)


def test_parse_module_reports_syntax_errors_as_findings(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    with pytest.raises(SyntaxError):
        parse_module(bad, tmp_path)
    report = Analyzer(tmp_path, config={}).run([bad])
    assert report.errors and "E999" in report.errors[0]
    assert not report.ok


# ----------------------------------------------------------------------
# The shipped tree and the CLI
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean():
    report = Analyzer(REPO).run_targets()
    rendered = [v.render() for v in report.violations] + report.errors
    assert report.ok, "\n".join(rendered)
    assert report.checked > 100  # the whole tree, not a subset


def test_cli_exit_codes():
    assert main(["--root", str(REPO)]) == 0
    assert main(["--list-rules"]) == 0
    assert main(["--root", str(FIXTURES),
                 str(FIXTURES / "rep003_bad.py")]) == 1
    assert main(["--root", str(REPO), "--disable", "no-such-rule"]) == 2


def test_cli_module_entry_point_runs_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--quiet"],
        cwd=str(REPO), capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_typing_gate_exits_zero_here():
    # mypy absent -> graceful skip; mypy present -> within the ratchet.
    assert typing_gate.main(["--root", str(REPO)]) == 0


# ----------------------------------------------------------------------
# The runtime half of the immutability contract
# ----------------------------------------------------------------------
def test_freeze_arrays_marks_read_only():
    grid = np.zeros((2, 2), dtype=np.int64)
    freeze_arrays(grid)
    with pytest.raises(ValueError):
        grid[0, 0] = 1


def test_network_lattice_arrays_are_read_only():
    lattice = NetworkLattice.for_network(
        [ConvLayer.square(14, 3, 16, 16), ConvLayer.square(7, 3, 16, 32)])
    vectors = [lattice.layer_geo, lattice.counts, lattice.n_win,
               lattice.im2col_rows, lattice.ic, lattice.oc,
               lattice.area_f, lattice.windows_f, lattice.n_pw_f,
               lattice.ic_f, lattice.oc_f, lattice.seg_starts,
               lattice.seg_geo]
    assert all(not vec.flags.writeable for vec in vectors)
    with pytest.raises(ValueError):
        lattice.counts[0] = 99  # repro: noqa[REP003] — proves read-only


def test_engine_cached_sweep_is_read_only():
    engine = MappingEngine()
    layers = [ConvLayer.square(14, 3, 16, 16)]
    sweep = engine.network_sweep(layers)
    assert sweep is engine.network_sweep(layers)  # cache hit: shared
    with pytest.raises(ValueError):
        sweep.counts[0] = 7  # repro: noqa[REP003] — proves read-only


def test_layer_grids_stay_read_only():
    grids = layer_lattice(ConvLayer.square(10, 3, 8, 8))
    with pytest.raises(ValueError):
        grids.area[0, 0] = 1  # repro: noqa[REP003] — proves read-only
