"""Tests for the experiment artifact exporter."""

import csv
import json

import pytest

from repro.experiments.export import export_all


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    out = tmp_path_factory.mktemp("artifacts")
    paths = export_all(out)
    return out, paths


class TestExportAll:
    def test_writes_many_files(self, exported):
        _, paths = exported
        assert len(paths) >= 14
        assert all(p.exists() for p in paths)

    def test_table1_csv_rows(self, exported):
        out, _ = exported
        with (out / "table1_vgg13.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        assert rows[0]["VW-SDK"] == "10x3x3x64"

    def test_table1_totals_json(self, exported):
        out, _ = exported
        payload = json.loads((out / "table1_resnet18_totals.json"
                              ).read_text())
        assert payload == {"im2col": 20041, "sdk": 7240, "vw-sdk": 4294}

    def test_fig8b_series(self, exported):
        out, _ = exported
        with (out / "fig8b_resnet18.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5   # five array sizes
        assert float(rows[-1]["vw-sdk"]) == pytest.approx(4.667, abs=0.01)

    def test_scoreboard_all_pass(self, exported):
        out, _ = exported
        with (out / "scoreboard.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) >= 45
        assert all(row["pass"] == "True" for row in rows)
