"""REP001 counter-seeds: a complete, metadata-free key builder."""

from dataclasses import dataclass, field
from functools import lru_cache


@dataclass(frozen=True)
class ConvLayer:
    ifm: int
    kernel: int
    stride: int
    repeats: int = 1
    name: str = field(default="", compare=False)


def canonical(layer):
    # Every identity field minus the documented exclusions; no metadata.
    return (layer.ifm, layer.kernel, layer.stride)


@lru_cache(maxsize=8)
def probe(layer: ConvLayer):
    return layer.ifm
