"""REP007 counter-seeds: fully annotated signatures."""

from typing import Optional


def cycles(layer: int, array: Optional[int] = None) -> int:
    return layer


def total(*counts: int) -> int:
    return len(counts)


class Probe:
    def run(self, budget: int) -> int:
        return budget
