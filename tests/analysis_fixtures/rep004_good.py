"""REP004 counter-seeds: every constructor pins its dtype."""

import numpy as np


def grids(n):
    area = np.zeros((n, n), dtype=np.int64)
    counts = np.array([1, 2, 3], dtype=np.int64)
    blank = np.full((n, n), 7, dtype=np.int64)
    alike = np.zeros_like(area)
    minimized = np.empty((n, n), dtype=np.int32)  # sanctioned literal
    dt = np.dtype(np.int32)  # stand-in for minimal_dtype(bound)
    bounded = np.zeros((n, n), dtype=dt)  # variable dtype: provenance
    return area, counts, blank, alike, minimized, bounded
