"""Suppression seeds: noqa scoping, bare and named."""

from somewhere import layer_lattice


def poke(layer):
    lat = layer_lattice(layer)
    lat.cycles[0] = 1  # repro: noqa[REP003]
    lat.area[0] = 2  # repro: noqa
    lat.n_pw[0] = 3  # repro: noqa[cached-array-mutation]
    lat.windows[0] = 4  # repro: noqa[REP001]  # expect: REP003
