"""REP008 seeds: catch-all handlers outside the runtime substrate."""


def swallow_everything(fn):
    try:
        return fn()
    except:  # expect: REP008
        return None


def swallow_exception(fn):
    try:
        return fn()
    except Exception:  # expect: REP008
        return None


def swallow_base(fn):
    try:
        return fn()
    except BaseException as error:  # expect: REP008
        return error


def swallow_in_tuple(fn):
    try:
        return fn()
    except (ValueError, Exception):  # expect: REP008
        return None


def swallow_qualified(fn):
    import builtins
    try:
        return fn()
    except builtins.Exception:  # expect: REP008
        return None
