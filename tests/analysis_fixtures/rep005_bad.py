"""REP005 seeds: float-literal equality and sum() over energies."""


def check(total, energies):
    if total == 1.5:  # expect: REP005
        return True
    exact = total != -2.25  # expect: REP005
    budget = sum(e for e in energies)  # expect: REP005
    return exact, budget
