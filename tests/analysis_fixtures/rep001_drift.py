"""REP001 doc-drift seed: the inventory excludes fields that are gone.

The fixture inventory documents ``layer.name`` and ``layer.repeats`` as
excluded, but this ConvLayer defines neither — renames the inventory
never followed.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ConvLayer:  # expect: REP001 REP001
    ifm: int
    kernel: int
    stride: int
