"""REP007 seeds: unannotated signatures in a strict module."""


def cycles(layer, array=None):  # expect: REP007 REP007
    return layer


def total(*counts):  # expect: REP007 REP007
    return len(counts)
