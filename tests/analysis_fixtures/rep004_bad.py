"""REP004 seeds: bare numpy constructors in a lattice module."""

import numpy as np


def grids(n):
    area = np.zeros((n, n))  # expect: REP004
    counts = np.array([1, 2, 3])  # expect: REP004
    blank = np.full((n, n), 7)  # expect: REP004
    narrow = np.empty((n, n), dtype=np.int16)  # expect: REP004
    lossy = np.zeros((n, n), np.float32)  # expect: REP004
    return area, counts, blank, narrow, lossy
