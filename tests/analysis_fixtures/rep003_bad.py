"""REP003 seeds: in-place edits of cache-resident lattice arrays."""

from somewhere import layer_lattice


def poke(layer):
    lat = layer_lattice(layer)
    lat.cycles[0] = 1  # expect: REP003
    area = lat.area
    area += 1  # expect: REP003
    lat.front.sort()  # expect: REP003
    lat.cycles.setflags(write=True)  # expect: REP003
    layer_lattice(layer).n_pw[0] = 2  # expect: REP003
