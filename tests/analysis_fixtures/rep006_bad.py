"""REP006 seeds: citations with no paper-map anchor."""


def window_cycles():
    """Implements eq. 42 for the window search."""  # expect: REP006
    return 0


def frontier():
    """Reproduces Fig. 12 of the paper."""  # expect: REP006
    return 0
