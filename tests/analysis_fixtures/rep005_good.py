"""REP005 counter-seeds: int comparisons, tolerances, math.fsum."""

import math


def check(total, energies):
    if int(total) == 2:
        return True
    close = math.isclose(total, 1.5, rel_tol=1e-9)
    budget = math.fsum(energies)
    scaled = total * 2.5
    return close, budget, scaled
