"""REP006 counter-seeds: citations the fixture paper map anchors."""


def window_cycles():
    """Implements eqs. 1-3 via Algorithm 1 (Table I layers)."""
    return 0


def frontier():
    """Reproduces Fig. 7; background in Section II."""
    return 0
