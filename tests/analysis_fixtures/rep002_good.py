"""REP002 counter-seeds: frozen, hashable all the way down."""

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class Geometry:
    rows: int
    cols: int


@dataclass(frozen=True)
class Request:
    geometry: Geometry
    scheme: str
    sides: Tuple[int, ...] = ()
    labels: FrozenSet[str] = frozenset()
    note: Optional[str] = field(default=None, compare=False)
