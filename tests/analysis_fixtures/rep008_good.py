"""REP008 near-misses: typed handlers the rule must stay silent on."""


class FakeReproError(RuntimeError):
    pass


class FakeConfigurationError(FakeReproError):
    pass


def typed_single(fn):
    try:
        return fn()
    except FakeConfigurationError:
        return None


def typed_tuple(fn):
    try:
        return fn()
    except (FakeReproError, OSError, TimeoutError):
        return None


def reraise_boundary(fn):
    try:
        return fn()
    except FakeReproError as error:
        raise RuntimeError("boundary") from error


def cleanup_without_catching(fn):
    try:
        return fn()
    finally:
        pass
