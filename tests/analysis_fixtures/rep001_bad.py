"""REP001 seeds: incomplete key builder, metadata keying, bad lru use."""

from dataclasses import dataclass, field
from functools import lru_cache


@dataclass(frozen=True)
class ConvLayer:
    ifm: int
    kernel: int
    stride: int
    repeats: int = 1
    name: str = field(default="", compare=False)


def canonical(layer):  # expect: REP001 REP001
    # Misses `stride` (an identity field) and keys on `name` (documented
    # presentation metadata) — both halves of the contract broken.
    return (layer.ifm, layer.kernel, layer.name)


class SolutionMemo:
    @lru_cache(maxsize=16)
    def solve(self, key):  # expect: REP001
        return key


@dataclass
class MutableKey:
    rows: int


@lru_cache(maxsize=8)
def probe(req: MutableKey):  # expect: REP001
    return req.rows
