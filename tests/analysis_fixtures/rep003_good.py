"""REP003 counter-seeds: copy-then-edit and pure reads are fine."""

from somewhere import layer_lattice


def safe(layer):
    lat = layer_lattice(layer)
    area = lat.area.copy()
    area += 1
    total = lat.cycles.sum()
    fresh = layer_lattice(layer).n_pw + 1
    mine = [0, 1]
    mine[0] = 2
    return area, total, fresh, mine
