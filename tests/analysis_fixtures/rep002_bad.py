"""REP002 seeds: a mutable request class and unhashable fields."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class MutableRequest:  # expect: REP002
    rows: int
    cols: int


@dataclass(frozen=True)
class ListyRequest:
    sizes: List[int]  # expect: REP002
    tags: dict = field(default_factory=dict)  # expect: REP002 REP002


@dataclass(frozen=True)
class NestedRequest:
    inner: MutableRequest  # expect: REP002
