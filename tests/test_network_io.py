"""Tests for JSON network loading/saving and the CLI --file path."""

import json

import pytest

from repro.cli import main
from repro.core.types import ConfigurationError
from repro.networks import (
    load_network,
    network_from_dict,
    network_to_dict,
    resnet18_full,
    save_network,
    vgg13,
)


SPEC = {
    "name": "EdgeNet",
    "layers": [
        {"ifm": 32, "kernel": 3, "ic": 3, "oc": 16, "stride": 2,
         "padding": 1, "name": "stem"},
        {"ifm": 16, "kernel": 3, "ic": 16, "oc": 32, "padding": 1,
         "repeats": 2},
        {"ifm": [8, 12], "kernel": [1, 3], "ic": 32, "oc": 32},
    ],
}


class TestFromDict:
    def test_basic(self):
        net = network_from_dict(SPEC)
        assert net.name == "EdgeNet"
        assert len(net) == 3
        assert net[0].stride == 2
        assert net[1].repeats == 2

    def test_pair_dimensions(self):
        net = network_from_dict(SPEC)
        assert (net[2].ifm_h, net[2].ifm_w) == (8, 12)
        assert (net[2].kernel_h, net[2].kernel_w) == (1, 3)

    def test_autonames_unnamed(self):
        net = network_from_dict(SPEC)
        assert net[1].name == "conv2"

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="missing keys"):
            network_from_dict({"layers": [{"ifm": 8, "kernel": 3}]})

    def test_empty_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            network_from_dict({"layers": []})

    def test_bad_pair_rejected(self):
        bad = {"layers": [{"ifm": [1, 2, 3], "kernel": 3, "ic": 1,
                           "oc": 1}]}
        with pytest.raises(ConfigurationError):
            network_from_dict(bad)


class TestRoundTrip:
    def test_dict_roundtrip(self):
        net = network_from_dict(SPEC)
        again = network_from_dict(network_to_dict(net))
        assert list(again) == list(net)

    def test_file_roundtrip(self, tmp_path):
        path = save_network(vgg13(), tmp_path / "vgg13.json")
        loaded = load_network(path)
        assert list(loaded) == list(vgg13())

    def test_strided_network_roundtrip(self, tmp_path):
        path = save_network(resnet18_full(), tmp_path / "rn.json")
        loaded = load_network(path)
        assert list(loaded) == list(resnet18_full())

    def test_invalid_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid network"):
            load_network(bad)


class TestCliFile:
    def test_network_from_file(self, tmp_path, capsys):
        path = tmp_path / "net.json"
        path.write_text(json.dumps(SPEC))
        assert main(["network", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "EdgeNet" in out
        assert "vw-sdk" in out

    def test_network_requires_name_or_file(self):
        with pytest.raises(SystemExit):
            main(["network"])
