"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_map_defaults(self):
        args = build_parser().parse_args(
            ["map", "--ifm", "14", "--ic", "256", "--oc", "256"])
        assert args.scheme == "vw-sdk"
        assert args.array == "512x512"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["map", "--ifm", "14", "--ic", "1", "--oc", "1",
                 "--scheme", "magic"])


class TestMapCommand:
    def test_resnet_l4(self, capsys):
        assert main(["map", "--ifm", "14", "--ic", "256",
                     "--oc", "256"]) == 0
        out = capsys.readouterr().out
        assert "4x3" in out
        assert "504" in out
        assert "utilization" in out

    def test_custom_array_and_scheme(self, capsys):
        assert main(["map", "--ifm", "14", "--ic", "256", "--oc", "256",
                     "--array", "512x256", "--scheme", "im2col"]) == 0
        out = capsys.readouterr().out
        assert "im2col" in out

    def test_kernel_flag(self, capsys):
        assert main(["map", "--ifm", "112", "--kernel", "7", "--ic", "3",
                     "--oc", "64"]) == 0
        out = capsys.readouterr().out
        assert "10x8" in out


class TestNetworkCommand:
    def test_resnet18(self, capsys):
        assert main(["network", "resnet18"]) == 0
        out = capsys.readouterr().out
        assert "vw-sdk=4294" in out
        assert "4.67x" in out

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            main(["network", "lenet"])

    def test_small_array(self, capsys):
        assert main(["network", "resnet18", "--array", "128x128"]) == 0
        out = capsys.readouterr().out
        assert "128x128" in out


class TestLandscapeCommand:
    def test_prints_best_windows(self, capsys):
        assert main(["landscape", "--ifm", "14", "--ic", "256",
                     "--oc", "256", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "4x3" in out
        assert "feasible" in out


class TestChipCommand:
    def test_plans_pipeline(self, capsys):
        assert main(["chip", "plan", "resnet18", "--arrays", "64"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "arrays used" in out

    def test_legacy_spelling_still_plans(self, capsys):
        # Pre-subcommand CLI: `chip NETWORK ...` implies `chip plan`.
        assert main(["chip", "resnet18", "--arrays", "64"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out

    def test_scheme_flag(self, capsys):
        assert main(["chip", "resnet18", "--arrays", "64",
                     "--scheme", "im2col"]) == 0
        out = capsys.readouterr().out
        assert "im2col" in out

    def test_sweep_counts_range(self, capsys):
        assert main(["chip", "sweep", "resnet18",
                     "--counts", "23:63:8"]) == 0
        out = capsys.readouterr().out
        assert "residency floor: 23 arrays" in out
        assert "ChipLattice" in out

    def test_sweep_counts_list_marks_infeasible(self, capsys):
        assert main(["chip", "sweep", "resnet18",
                     "--counts", "4,64"]) == 0
        out = capsys.readouterr().out
        assert "-" in out          # the 4-array probe is below the floor
        assert "81" in out         # the 64-array bottleneck

    def test_sweep_default_grid(self, capsys):
        assert main(["chip", "sweep", "resnet18"]) == 0
        out = capsys.readouterr().out
        assert "chip sweep" in out

    def test_sweep_bad_counts_spec(self):
        for spec in ("1:2:3:4", "23:abc", "4,x", "64:32", "23:64:0", ","):
            with pytest.raises(SystemExit):
                main(["chip", "sweep", "resnet18", "--counts", spec])


class TestChipParetoCommand:
    def test_homogeneous_frontier(self, capsys):
        assert main(["chip", "pareto", "resnet18",
                     "--sides", "128,256"]) == 0
        out = capsys.readouterr().out
        assert "cells/energy/latency frontier" in out
        assert "non-dominated deployments" in out
        assert "128x128" in out

    def test_pools_flag_adds_mixed_plan(self, capsys):
        assert main(["chip", "pareto", "resnet18", "--pools",
                     "--sides", "128,256,512"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous pools" in out
        assert "mixed" in out

    def test_cost_params_file(self, capsys, tmp_path):
        config = tmp_path / "cost.json"
        config.write_text('{"cycle_time_ns": 10.0, "adc_energy_pj": 0.5}')
        assert main(["chip", "pareto", "resnet18", "--sides", "256",
                     "--cost-params", str(config)]) == 0
        out = capsys.readouterr().out
        assert "energy (nJ)" in out

    def test_bad_cost_params_exit_cleanly(self, tmp_path):
        bad_key = tmp_path / "bad.json"
        bad_key.write_text('{"adc_energy": 1.0}')
        bad_json = tmp_path / "mangled.json"
        bad_json.write_text("{not json")
        for path in (bad_key, bad_json, tmp_path / "missing.json"):
            with pytest.raises(SystemExit):
                main(["chip", "pareto", "resnet18", "--sides", "256",
                      "--cost-params", str(path)])

    def test_infeasible_bounds_exit_cleanly(self):
        with pytest.raises(SystemExit):
            main(["chip", "pareto", "resnet18", "--sides", "512",
                  "--max-arrays", "4"])

    def test_bad_sides_exit_cleanly(self):
        for argv in (["--sides", "64,abc"], ["--sides", "0,64"],
                     ["--max-cells", "0"]):
            with pytest.raises(SystemExit):
                main(["chip", "pareto", "resnet18"] + argv)

    def test_sides_exceeding_budget_exit_cleanly(self, capsys):
        # Every candidate over --max-cells: empty pool, clean exit.
        with pytest.raises(SystemExit, match="max_cells"):
            main(["chip", "pareto", "resnet18", "--sides", "1024"])


class TestDseCommand:
    def test_square_frontier(self, capsys):
        assert main(["dse", "sweep", "resnet18",
                     "--max-cells", "65536"]) == 0
        out = capsys.readouterr().out
        assert "square cells-vs-cycles frontier" in out
        assert "256x256" in out

    def test_non_square_frontier(self, capsys):
        assert main(["dse", "sweep", "resnet18", "--non-square",
                     "--max-cells", "65536"]) == 0
        out = capsys.readouterr().out
        assert "non-square cells-vs-cycles frontier" in out
        assert "256x64" in out     # a rectangle on the frontier

    def test_sides_override(self, capsys):
        assert main(["dse", "sweep", "resnet18", "--sides", "64,128",
                     "--max-cells", "16384"]) == 0
        out = capsys.readouterr().out
        assert "64x64" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["dse"])

    def test_bad_sides_and_budget_exit_cleanly(self):
        for argv in (["--sides", "64,abc"], ["--sides", ","],
                     ["--sides", "0,64"], ["--max-cells", "0"]):
            with pytest.raises(SystemExit):
                main(["dse", "sweep", "resnet18"] + argv)


class TestRuntimeFlags:
    def test_map_store_persists_and_replays(self, capsys, tmp_path):
        store = tmp_path / "solutions.jsonl"
        argv = ["map", "--ifm", "14", "--ic", "256", "--oc", "256",
                "--store", str(store)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert store.stat().st_size > 0    # the solution was persisted
        assert main(argv) == 0             # fresh process-equivalent run
        assert capsys.readouterr().out == cold

    def test_network_store_flag(self, capsys, tmp_path):
        store = tmp_path / "solutions.jsonl"
        assert main(["network", "resnet18", "--store", str(store)]) == 0
        assert "totals:" in capsys.readouterr().out
        assert store.stat().st_size > 0

    def test_unopenable_store_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="--store"):
            main(["map", "--ifm", "14", "--ic", "256", "--oc", "256",
                  "--store", str(tmp_path)])    # a directory, not a file

    def test_chip_sweep_deadline_exceeded_exits_3(self, capsys):
        code = main(["chip", "sweep", "resnet18",
                     "--deadline-ms", "0.0001"])
        assert code == 3
        err = capsys.readouterr().err
        assert "deadline exceeded" in err
        assert "probes finished" in err    # best-so-far progress line

    def test_bad_deadline_exits_cleanly(self):
        with pytest.raises(SystemExit, match="--deadline-ms"):
            main(["chip", "sweep", "resnet18", "--deadline-ms", "-5"])

    def test_repro_error_exits_2(self, capsys):
        code = main(["chip", "plan", "resnet18", "--arrays", "1"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("vwsdk: ")   # typed one-liner, no traceback


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port, args.workers) == ("127.0.0.1", 8080, 2)
        assert args.backend == "auto"
        assert args.fault_injection is False

    def test_dispatches_to_server(self, monkeypatch):
        calls = {}

        def fake_serve(host, port, **kwargs):
            calls["host"], calls["port"] = host, port
            calls.update(kwargs)

        import repro.server
        monkeypatch.setattr(repro.server, "serve", fake_serve)
        assert main(["serve", "--port", "0", "--workers", "3",
                     "--store", "l2.jsonl", "--backend", "numpy",
                     "--fault-injection"]) == 0
        assert calls["port"] == 0
        assert calls["workers"] == 3
        assert calls["store_path"] == "l2.jsonl"
        assert calls["backend"] == "numpy"
        assert calls["fault_injection"] is True

    def test_invalid_workers_exit_cleanly(self):
        with pytest.raises(SystemExit, match="serve:"):
            main(["serve", "--workers", "0", "--port", "0"])
