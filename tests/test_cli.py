"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_map_defaults(self):
        args = build_parser().parse_args(
            ["map", "--ifm", "14", "--ic", "256", "--oc", "256"])
        assert args.scheme == "vw-sdk"
        assert args.array == "512x512"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["map", "--ifm", "14", "--ic", "1", "--oc", "1",
                 "--scheme", "magic"])


class TestMapCommand:
    def test_resnet_l4(self, capsys):
        assert main(["map", "--ifm", "14", "--ic", "256",
                     "--oc", "256"]) == 0
        out = capsys.readouterr().out
        assert "4x3" in out
        assert "504" in out
        assert "utilization" in out

    def test_custom_array_and_scheme(self, capsys):
        assert main(["map", "--ifm", "14", "--ic", "256", "--oc", "256",
                     "--array", "512x256", "--scheme", "im2col"]) == 0
        out = capsys.readouterr().out
        assert "im2col" in out

    def test_kernel_flag(self, capsys):
        assert main(["map", "--ifm", "112", "--kernel", "7", "--ic", "3",
                     "--oc", "64"]) == 0
        out = capsys.readouterr().out
        assert "10x8" in out


class TestNetworkCommand:
    def test_resnet18(self, capsys):
        assert main(["network", "resnet18"]) == 0
        out = capsys.readouterr().out
        assert "vw-sdk=4294" in out
        assert "4.67x" in out

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            main(["network", "lenet"])

    def test_small_array(self, capsys):
        assert main(["network", "resnet18", "--array", "128x128"]) == 0
        out = capsys.readouterr().out
        assert "128x128" in out


class TestLandscapeCommand:
    def test_prints_best_windows(self, capsys):
        assert main(["landscape", "--ifm", "14", "--ic", "256",
                     "--oc", "256", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "4x3" in out
        assert "feasible" in out


class TestChipCommand:
    def test_plans_pipeline(self, capsys):
        assert main(["chip", "resnet18", "--arrays", "64"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
        assert "arrays used" in out

    def test_scheme_flag(self, capsys):
        assert main(["chip", "resnet18", "--arrays", "64",
                     "--scheme", "im2col"]) == 0
        out = capsys.readouterr().out
        assert "im2col" in out
