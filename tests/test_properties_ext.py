"""Property-based tests for the extension modules.

Mirrors ``test_properties.py`` for the beyond-paper systems: packing,
differential encoding, bit-slicing, grouped execution, and the chip
allocator.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConvLayer, PIMArray
from repro.chip import TileRequest, pack_tiles
from repro.chip.allocation import allocate_layer
from repro.core.grouped import grouped_mapping
from repro.pim import (
    DifferentialCrossbar,
    grouped_conv2d_reference,
    run_grouped,
    sliced_mvm,
)
from repro.search import vwsdk_solution

# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------

tile_lists = st.lists(
    st.tuples(st.integers(1, 16), st.integers(1, 16)),
    min_size=1, max_size=24)


@given(tile_lists)
@settings(max_examples=80, deadline=None)
def test_packing_is_valid_and_bounded(dims):
    array = PIMArray(16, 16)
    tiles = [TileRequest(f"t{i}", r, c) for i, (r, c) in enumerate(dims)]
    result = pack_tiles(tiles, array)
    result.validate()                       # bounds + no overlap
    assert len(result.placements) == len(tiles)
    assert result.arrays_used <= len(tiles)  # never worse than 1/array
    # Area lower bound: can't beat total-cells / array-cells.
    lower = -(-result.cells_requested // array.cells)
    assert result.arrays_used >= lower


# ----------------------------------------------------------------------
# Differential encoding
# ----------------------------------------------------------------------

@given(st.integers(1, 12), st.integers(1, 6),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_differential_mvm_always_exact(rows, cols, seed):
    rng = np.random.default_rng(seed)
    w = rng.integers(-9, 10, (rows, cols)).astype(float)
    x = rng.integers(-9, 10, rows).astype(float)
    xbar = DifferentialCrossbar(PIMArray(rows, 2 * cols))
    xbar.program(w)
    assert (xbar.conductances >= 0).all()
    np.testing.assert_array_equal(xbar.compute(x), x @ w)


# ----------------------------------------------------------------------
# Bit-slicing
# ----------------------------------------------------------------------

@given(st.integers(1, 16), st.integers(1, 8), st.integers(1, 8),
       st.integers(1, 4), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_bitsliced_mvm_always_exact(rows, cols, weight_bits, cell_bits,
                                    seed):
    rng = np.random.default_rng(seed)
    top = (1 << weight_bits) - 1
    w = rng.integers(-top, top + 1, (rows, cols))
    x = rng.integers(-7, 8, rows)
    np.testing.assert_array_equal(
        sliced_mvm(w, x, weight_bits, cell_bits), x @ w)


# ----------------------------------------------------------------------
# Grouped convolution execution
# ----------------------------------------------------------------------

@given(st.sampled_from([2, 4]), st.integers(6, 10),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_grouped_execution_always_exact(groups, ifm, seed):
    rng = np.random.default_rng(seed)
    ic = 2 * groups
    oc = 2 * groups
    mapping = grouped_mapping(ifm, 3, ic, oc, groups=groups,
                              array=PIMArray(96, 48))
    x = rng.integers(-3, 4, (ic, ifm, ifm)).astype(float)
    w = rng.integers(-3, 4, (oc, ic // groups, 3, 3)).astype(float)
    result = run_grouped(mapping, x, w)
    np.testing.assert_array_equal(
        result.ofm, grouped_conv2d_reference(x, w, groups))
    assert result.cycles == mapping.cycles


# ----------------------------------------------------------------------
# Chip allocation
# ----------------------------------------------------------------------

@given(st.integers(4, 16), st.integers(1, 8), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_allocation_latency_monotone_in_arrays(ifm, channels, arrays):
    layer = ConvLayer.square(max(ifm, 4), 3, channels, channels)
    solution = vwsdk_solution(layer, PIMArray(64, 32))
    lat = allocate_layer(solution, arrays).latency_cycles
    lat_more = allocate_layer(solution, arrays + 1).latency_cycles
    assert lat_more <= lat
    # One array reproduces the paper's single-array cycle count.
    assert allocate_layer(solution, 1).latency_cycles == solution.cycles
