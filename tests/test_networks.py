"""Unit tests for the model zoo and network-level analysis."""

import pytest

from repro import ConvLayer, PIMArray
from repro.networks import (
    Network,
    alexnet,
    compare_schemes,
    get_network,
    map_network,
    resnet18,
    resnet18_full,
    vgg11,
    vgg13,
    vgg16,
    vgg19,
)


class TestZooShapes:
    def test_vgg13_matches_table1(self):
        net = vgg13()
        assert len(net) == 10
        shapes = [(l.ifm_h, l.shape_str) for l in net]
        assert shapes[0] == (224, "3x3x3x64")
        assert shapes[4] == (56, "3x3x128x256")
        assert shapes[9] == (14, "3x3x512x512")

    def test_resnet18_matches_table1(self):
        net = resnet18()
        assert len(net) == 5
        assert net[0].shape_str == "7x7x3x64"
        assert net[0].ifm_h == 112
        assert net[4].ifm_h == 7

    def test_vgg_variant_conv_counts(self):
        assert len(vgg11()) == 8
        assert len(vgg16()) == 13
        assert len(vgg19()) == 16

    def test_vgg16_stage_channels(self):
        channels = [l.out_channels for l in vgg16()]
        assert channels == [64, 64, 128, 128, 256, 256, 256,
                            512, 512, 512, 512, 512, 512]

    def test_alexnet_first_layer(self):
        net = alexnet()
        assert net[0].kernel_h == 11
        assert net[0].out_channels == 96

    def test_resnet18_full_has_strides(self):
        net = resnet18_full()
        assert any(l.stride == 2 for l in net)
        assert any(l.repeats > 1 for l in net)

    def test_resnet18_full_folds_to_paper_shapes(self):
        folded = resnet18_full().folded()
        assert all(l.stride == 1 and l.padding == 0 for l in folded)
        stem = folded[0]
        assert stem.num_windows == 112 * 112

    def test_get_network_by_name(self):
        assert get_network("VGG13").name == "VGG-13"
        assert get_network("resnet18").name == "Resnet-18"

    def test_get_network_unknown(self):
        with pytest.raises(ValueError, match="unknown network"):
            get_network("lenet")


class TestNetworkContainer:
    def test_iteration_and_indexing(self):
        net = vgg13()
        assert net[0] is list(net)[0]

    def test_from_layers_autonames(self):
        net = Network.from_layers("tiny", [ConvLayer.square(8, 3, 1, 2),
                                           ConvLayer.square(6, 3, 2, 4)])
        assert net[0].name == "conv1"
        assert net[1].name == "conv2"

    def test_empty_network_rejected(self):
        with pytest.raises(Exception):
            Network(name="empty", layers=())

    def test_totals(self):
        net = Network.from_layers("tiny", [ConvLayer.square(8, 3, 2, 4)])
        assert net.total_weights == 9 * 2 * 4
        assert net.total_macs == net.total_weights * 36

    def test_scaled_input(self):
        net = vgg13().scaled_input(2)
        assert net[0].ifm_h == 448
        assert "x2" in net.name

    def test_describe(self):
        text = vgg13().describe()
        assert "VGG-13" in text
        assert "conv1" in text


class TestAnalysis:
    def test_resnet_totals(self, array512):
        rep = map_network(resnet18(), array512, "vw-sdk")
        assert rep.total_cycles == 4294

    def test_vgg_totals(self, array512):
        rep = map_network(vgg13(), array512, "vw-sdk")
        assert rep.total_cycles == 77102

    def test_speedups(self, array512):
        reports = compare_schemes(resnet18(), array512)
        vw = reports["vw-sdk"]
        assert vw.speedup_over(reports["im2col"]) == pytest.approx(4.67,
                                                                   abs=0.01)
        assert vw.speedup_over(reports["sdk"]) == pytest.approx(1.69,
                                                                abs=0.01)

    def test_layer_speedups_length(self, array512):
        reports = compare_schemes(resnet18(), array512)
        per_layer = reports["vw-sdk"].layer_speedups_over(reports["im2col"])
        assert len(per_layer) == 5
        assert per_layer[0] == pytest.approx(11236 / 1431)

    def test_speedup_requires_same_network(self, array512):
        a = map_network(resnet18(), array512, "vw-sdk")
        b = map_network(vgg13(), array512, "vw-sdk")
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_weighted_cycles_uses_repeats(self, array512):
        net = Network.from_layers(
            "rep", [ConvLayer.square(14, 3, 64, 64, repeats=3)])
        rep = map_network(net, array512, "vw-sdk")
        assert rep.weighted_cycles == 3 * rep.total_cycles

    def test_rows_structure(self, array512):
        rep = map_network(resnet18(), array512, "vw-sdk")
        rows = rep.rows()
        assert len(rows) == 5
        assert rows[3]["window"] == "4x3"
        assert rows[3]["cycles"] == 504

    def test_utilizations_per_layer(self, array512):
        rep = map_network(resnet18(), array512, "vw-sdk")
        utils = rep.utilizations()
        assert len(utils) == 5
        assert all(0 < u.mean_pct <= 100 for u in utils)

    def test_total_energy_positive(self, array512):
        rep = map_network(resnet18(), array512, "vw-sdk")
        assert rep.total_energy_nj() > 0

    def test_full_resnet_mappable_when_folded(self, array512):
        folded = resnet18_full().folded()
        rep = map_network(folded, array512, "vw-sdk")
        assert rep.total_cycles > 0
        base = map_network(folded, array512, "im2col")
        assert rep.total_cycles < base.total_cycles
