"""Monotonicity invariants the DSE bisections rely on.

``smallest_square_array`` bisects over the array side and
``smallest_chip`` over the array count; both are exact only because
cycles are monotone non-increasing in rows, columns and array budget.
The requirements docstrings claim it — these properties pin it, over
randomized layers *including strided and padded ones*.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip import ChipConfig, plan_pipeline
from repro.chip.pipeline import InsufficientArraysError
from repro.core import ConvLayer, PIMArray
from repro.dse import network_cycles
from repro.networks import Network
from repro.search import solve

layers = st.builds(
    ConvLayer.square,
    st.integers(min_value=4, max_value=18),      # ifm
    st.integers(min_value=1, max_value=4),       # kernel
    st.integers(min_value=1, max_value=24),      # ic
    st.integers(min_value=1, max_value=24),      # oc
    stride=st.integers(min_value=1, max_value=3),
    padding=st.integers(min_value=0, max_value=2),
).filter(lambda l: l.kernel_h <= l.ifm_h)

arrays = st.builds(
    PIMArray,
    st.integers(min_value=8, max_value=400),     # rows
    st.integers(min_value=4, max_value=400),     # cols
)

networks = st.lists(layers, min_size=1, max_size=3).map(
    lambda ls: Network.from_layers("rand", ls))

growth = st.integers(min_value=1, max_value=300)

#: The schemes the bisections default to / fall back through.
SCHEMES = ("vw-sdk", "im2col")


@given(layers, arrays, growth, st.sampled_from(SCHEMES))
@settings(max_examples=60, deadline=None)
def test_cycles_non_increasing_in_rows(layer, array, extra, scheme):
    taller = PIMArray(array.rows + extra, array.cols)
    assert (solve(layer, taller, scheme).cycles
            <= solve(layer, array, scheme).cycles)


@given(layers, arrays, growth, st.sampled_from(SCHEMES))
@settings(max_examples=60, deadline=None)
def test_cycles_non_increasing_in_cols(layer, array, extra, scheme):
    wider = PIMArray(array.rows, array.cols + extra)
    assert (solve(layer, wider, scheme).cycles
            <= solve(layer, array, scheme).cycles)


@given(networks, st.integers(min_value=8, max_value=300), growth)
@settings(max_examples=40, deadline=None)
def test_network_cycles_non_increasing_in_square_side(network, side, extra):
    assert (network_cycles(network, PIMArray.square(side + extra))
            <= network_cycles(network, PIMArray.square(side)))


@given(networks, st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=32))
@settings(max_examples=40, deadline=None)
def test_bottleneck_non_increasing_in_array_count(network, count, extra):
    array = PIMArray.square(256)

    def bottleneck(num_arrays):
        try:
            return plan_pipeline(network, ChipConfig(array, num_arrays)
                                 ).bottleneck_cycles
        except InsufficientArraysError:
            return None

    base = bottleneck(count)
    bigger = bottleneck(count + extra)
    if base is not None:
        assert bigger is not None and bigger <= base
