"""Monotonicity and equivalence invariants the DSE layer relies on.

``smallest_square_array`` bisects over the array side and
``smallest_chip`` over the array count; both are exact only because
cycles are monotone non-increasing in rows, columns and array budget.
The requirements docstrings claim it — these properties pin it, over
randomized layers *including strided and padded ones*.

``ChipLattice`` replays the pipeline greedy from precomputed merged
staircases; the equivalence properties here pin it **bit-identical**
to the per-probe ``heapq`` greedy — bottleneck, fill latency and
arrays used — over random networks (repeats included), schemes, array
shapes and probe grids, through both the vectorized ``sweep`` path and
the scalar merged-binary-search ``outcome`` path.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip import ChipConfig, ChipLattice, plan_pipeline
from repro.chip.pipeline import InsufficientArraysError
from repro.core import ConvLayer, PIMArray
from repro.dse import network_cycles
from repro.networks import Network
from repro.search import solve

layers = st.builds(
    ConvLayer.square,
    st.integers(min_value=4, max_value=18),      # ifm
    st.integers(min_value=1, max_value=4),       # kernel
    st.integers(min_value=1, max_value=24),      # ic
    st.integers(min_value=1, max_value=24),      # oc
    stride=st.integers(min_value=1, max_value=3),
    padding=st.integers(min_value=0, max_value=2),
).filter(lambda l: l.kernel_h <= l.ifm_h)

arrays = st.builds(
    PIMArray,
    st.integers(min_value=8, max_value=400),     # rows
    st.integers(min_value=4, max_value=400),     # cols
)

networks = st.lists(layers, min_size=1, max_size=3).map(
    lambda ls: Network.from_layers("rand", ls))

growth = st.integers(min_value=1, max_value=300)

#: The schemes the bisections default to / fall back through.
SCHEMES = ("vw-sdk", "im2col")


@given(layers, arrays, growth, st.sampled_from(SCHEMES))
@settings(max_examples=60, deadline=None)
def test_cycles_non_increasing_in_rows(layer, array, extra, scheme):
    taller = PIMArray(array.rows + extra, array.cols)
    assert (solve(layer, taller, scheme).cycles
            <= solve(layer, array, scheme).cycles)


@given(layers, arrays, growth, st.sampled_from(SCHEMES))
@settings(max_examples=60, deadline=None)
def test_cycles_non_increasing_in_cols(layer, array, extra, scheme):
    wider = PIMArray(array.rows, array.cols + extra)
    assert (solve(layer, wider, scheme).cycles
            <= solve(layer, array, scheme).cycles)


@given(networks, st.integers(min_value=8, max_value=300), growth)
@settings(max_examples=40, deadline=None)
def test_network_cycles_non_increasing_in_square_side(network, side, extra):
    assert (network_cycles(network, PIMArray.square(side + extra))
            <= network_cycles(network, PIMArray.square(side)))


@given(networks, st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=32))
@settings(max_examples=40, deadline=None)
def test_bottleneck_non_increasing_in_array_count(network, count, extra):
    array = PIMArray.square(256)

    def bottleneck(num_arrays):
        try:
            return plan_pipeline(network, ChipConfig(array, num_arrays)
                                 ).bottleneck_cycles
        except InsufficientArraysError:
            return None

    base = bottleneck(count)
    bigger = bottleneck(count + extra)
    if base is not None:
        assert bigger is not None and bigger <= base


# ----------------------------------------------------------------------
# ChipLattice vs the per-probe heapq greedy
# ----------------------------------------------------------------------

#: Networks whose layers carry block repeats too — the replica step
#: cost ``tiles * repeats`` must match the greedy's.
repeated_networks = st.lists(
    st.tuples(layers, st.integers(min_value=1, max_value=3)),
    min_size=1, max_size=4,
).map(lambda pairs: Network.from_layers(
    "rand", [dataclasses.replace(layer, repeats=reps)
             for layer, reps in pairs]))

probe_grids = st.lists(st.integers(min_value=1, max_value=1 << 14),
                       min_size=1, max_size=8)


def _greedy_outcome(network, array, count, scheme):
    try:
        plan = plan_pipeline(network, ChipConfig(array, count), scheme)
    except InsufficientArraysError:
        return None
    return (plan.bottleneck_cycles, plan.fill_latency_cycles,
            plan.arrays_used)


@given(repeated_networks, arrays, probe_grids, st.sampled_from(SCHEMES))
@settings(max_examples=50, deadline=None)
def test_chip_lattice_bit_identical_to_greedy(network, array, counts,
                                              scheme):
    lattice = ChipLattice.for_network(network, array, scheme)
    sweep = lattice.sweep(counts)
    for index, count in enumerate(counts):
        reference = _greedy_outcome(network, array, count, scheme)
        vec = sweep.outcome(index)
        scalar = lattice.outcome(count)
        for got in (vec, scalar):
            if reference is None:
                assert got is None
            else:
                assert (got.bottleneck_cycles, got.fill_latency_cycles,
                        got.arrays_used) == reference


@given(repeated_networks, arrays, st.integers(min_value=1, max_value=512),
       st.integers(min_value=1, max_value=256))
@settings(max_examples=50, deadline=None)
def test_chip_lattice_bottleneck_monotone_in_count(network, array, count,
                                                   extra):
    lattice = ChipLattice.for_network(network, array)
    base = lattice.bottleneck_at(count)
    bigger = lattice.bottleneck_at(count + extra)
    if base is not None:
        assert bigger is not None and bigger <= base
