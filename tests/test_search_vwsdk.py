"""Unit tests for Algorithm 1 (the VW-SDK search)."""

import pytest

from repro import ConvLayer, PIMArray, ParallelWindow
from repro.search import (
    evaluate_window,
    exhaustive_solution,
    im2col_solution,
    vwsdk_solution,
)


class TestTable1Shapes:
    @pytest.mark.parametrize("ifm,k,ic,oc,window,cycles", [
        (224, 3, 3, 64, "10x3", 6216),
        (224, 3, 64, 64, "4x4", 24642),
        (112, 3, 64, 128, "4x4", 6050),
        (112, 3, 128, 128, "4x4", 12100),
        (56, 3, 128, 256, "4x3", 5832),
        (56, 3, 256, 256, "4x3", 10206),
        (28, 3, 256, 512, "3x3", 3380),
        (28, 3, 512, 512, "3x3", 6084),
        (14, 3, 512, 512, "3x3", 1296),
        (112, 7, 3, 64, "10x8", 1431),
        (56, 3, 64, 64, "4x4", 1458),
        (28, 3, 128, 128, "4x4", 676),
        (14, 3, 256, 256, "4x3", 504),
        (7, 3, 512, 512, "3x3", 225),
    ])
    def test_window_and_cycles(self, ifm, k, ic, oc, window, cycles):
        layer = ConvLayer.square(ifm, k, ic, oc)
        sol = vwsdk_solution(layer, PIMArray.square(512))
        assert str(sol.window) == window
        assert sol.cycles == cycles


class TestSearchBehaviour:
    def test_never_worse_than_im2col(self, resnet_l4, array512):
        sol = vwsdk_solution(resnet_l4, array512)
        base = im2col_solution(resnet_l4, array512)
        assert sol.cycles <= base.cycles

    def test_degenerates_to_im2col_when_nothing_helps(self, array512):
        layer = ConvLayer.square(7, 3, 512, 512)
        sol = vwsdk_solution(layer, array512)
        assert sol.is_im2col_shaped
        assert sol.cycles == im2col_solution(layer, array512).cycles

    def test_first_found_tie_break(self):
        # VGG-13 layer 1: 10x3 and 4x6 tie at 6216; the width-major scan
        # reaches 10x3 first (PW_h stays at the kernel height).
        layer = ConvLayer.square(224, 3, 3, 64)
        sol = vwsdk_solution(layer, PIMArray.square(512))
        tie = evaluate_window(layer, PIMArray.square(512),
                              ParallelWindow(h=6, w=4))
        assert tie.cycles == sol.cycles
        assert str(sol.window) == "10x3"

    def test_candidates_searched_counted(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        sol = vwsdk_solution(layer, PIMArray.square(512))
        # 12x12 grid of (h, w) minus the kernel window = 143.
        assert sol.candidates_searched == 143

    def test_custom_candidate_sequence(self):
        layer = ConvLayer.square(14, 3, 256, 256)
        sol = vwsdk_solution(layer, PIMArray.square(512),
                             candidates=[ParallelWindow(h=4, w=4)])
        # Only 4x4 offered; it beats im2col (576 < 720) so it is chosen.
        assert str(sol.window) == "4x4"
        assert sol.cycles == 576

    def test_scheme_label(self, resnet_l4, array512):
        assert vwsdk_solution(resnet_l4, array512).scheme == "vw-sdk"

    def test_duplication_is_windows_inside(self, resnet_l4, array512):
        sol = vwsdk_solution(resnet_l4, array512)
        assert sol.duplication == sol.window.windows_inside(resnet_l4)

    def test_tiny_array_still_solves(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        sol = vwsdk_solution(layer, PIMArray(16, 4))
        assert sol.cycles >= 1

    def test_rectangular_ifm(self):
        layer = ConvLayer(ifm_h=8, ifm_w=20, kernel_h=3, kernel_w=3,
                          in_channels=16, out_channels=16)
        sol = vwsdk_solution(layer, PIMArray(128, 64))
        assert sol.cycles <= im2col_solution(layer, PIMArray(128, 64)).cycles

    def test_non_square_kernel(self):
        layer = ConvLayer(ifm_h=12, ifm_w=12, kernel_h=1, kernel_w=5,
                          in_channels=8, out_channels=8)
        sol = vwsdk_solution(layer, PIMArray(128, 64))
        assert sol.window.covers_kernel(layer)
        assert sol.cycles <= im2col_solution(layer, PIMArray(128, 64)).cycles


class TestEvaluateWindow:
    def test_infeasible_window_returns_none(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        assert evaluate_window(layer, PIMArray.square(512),
                               ParallelWindow(h=15, w=3)) is None

    def test_sub_kernel_window_returns_none(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        assert evaluate_window(layer, PIMArray.square(512),
                               ParallelWindow(h=2, w=3)) is None

    def test_row_overflow_returns_none(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        assert evaluate_window(layer, PIMArray(8, 512),
                               ParallelWindow(h=3, w=4)) is None

    def test_feasible_window_solution(self, resnet_l4, array512):
        sol = evaluate_window(resnet_l4, array512, ParallelWindow(h=3, w=4))
        assert sol is not None
        assert sol.cycles == 504


class TestAgainstExhaustiveOracle:
    @pytest.mark.parametrize("ifm,k,ic,oc,rows,cols", [
        (14, 3, 256, 256, 512, 512),
        (28, 3, 128, 128, 512, 512),
        (14, 3, 64, 64, 128, 128),
        (20, 5, 10, 30, 256, 128),
        (10, 3, 3, 8, 64, 16),
        (12, 2, 7, 5, 96, 48),
    ])
    def test_algorithm1_is_globally_optimal(self, ifm, k, ic, oc, rows,
                                            cols):
        layer = ConvLayer.square(ifm, k, ic, oc)
        arr = PIMArray(rows, cols)
        assert (vwsdk_solution(layer, arr).cycles
                == exhaustive_solution(layer, arr).cycles)
