"""Unit tests for the eq. 9 utilization model."""

import pytest

from repro import ConvLayer, PIMArray
from repro.core.utilization import tile_sizes, utilization_report
from repro.search import im2col_solution, sdk_solution, smd_solution, solve


class TestTileSizes:
    def test_exact_split(self):
        assert tile_sizes(64, 32) == [32, 32]

    def test_remainder(self):
        assert tile_sizes(128, 42) == [42, 42, 42, 2]

    def test_single_tile(self):
        assert tile_sizes(8, 42) == [8]

    def test_tile_of_one(self):
        assert tile_sizes(3, 1) == [1, 1, 1]

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            tile_sizes(8, 0)


class TestVWUtilization:
    def test_paper_73_8_percent_peak(self, vgg_l5, array512):
        # VGG-13 layer 5, 4x3 window, IC_t = 42: a full tile uses
        # 2*256 columns x 9*42 cells = 193536 of 262144 cells = 73.83%.
        rep = utilization_report(solve(vgg_l5, array512, "vw-sdk"))
        assert rep.peak_pct == pytest.approx(73.83, abs=0.01)

    def test_last_partial_tile_drags_mean(self, vgg_l5, array512):
        rep = utilization_report(solve(vgg_l5, array512, "vw-sdk"))
        # Tiles: 42, 42, 42, 2 channels -> mean well below peak.
        assert rep.mean_pct < rep.peak_pct
        assert rep.mean_pct == pytest.approx(
            100 * (3 * 193536 + 9216) / (4 * 262144), abs=0.01)

    def test_tile_count_is_ar_times_ac(self, vgg_l5, array512):
        sol = solve(vgg_l5, array512, "vw-sdk")
        rep = utilization_report(sol)
        assert len(rep.tiles) == sol.breakdown.ar * sol.breakdown.ac

    def test_used_cells_formula(self, resnet_l4, array512):
        sol = solve(resnet_l4, array512, "vw-sdk")   # 4x3, IC_t 42
        rep = utilization_report(sol)
        full_tile = rep.tiles[0]
        assert full_tile.cells_used == 9 * 42 * 2 * 256

    def test_fractions_bounded(self, vgg_l5, array512):
        rep = utilization_report(solve(vgg_l5, array512, "vw-sdk"))
        assert all(0 < f <= 1 for f in rep.fractions)


class TestIm2colUtilization:
    def test_every_cell_of_chunk_used(self, array512):
        layer = ConvLayer.square(7, 3, 512, 512)
        rep = utilization_report(im2col_solution(layer, array512))
        # 9 chunks: eight full 512-row chunks + one 512-row chunk?  No:
        # 4608 rows = 9 x 512 exactly, every chunk 512x512 fully used.
        assert len(rep.tiles) == 9
        assert rep.peak_pct == 100.0

    def test_partial_last_chunk(self, array512):
        layer = ConvLayer.square(28, 3, 256, 512)   # 2304 rows
        rep = utilization_report(im2col_solution(layer, array512))
        fractions = sorted(rep.fractions)
        assert fractions[-1] == 1.0
        assert fractions[0] == pytest.approx(256 / 512, abs=1e-9)

    def test_single_tile_small_layer(self):
        layer = ConvLayer.square(8, 3, 4, 4)
        rep = utilization_report(im2col_solution(layer, PIMArray(64, 16)))
        assert len(rep.tiles) == 1
        assert rep.tiles[0].cells_used == 36 * 4


class TestSDKUtilization:
    def test_equal_to_vw_when_same_window(self, array512):
        # VGG-13 layers 2/3: both algorithms use 4x4 with 32-channel
        # tiles — the paper notes their utilizations coincide there.
        layer = ConvLayer.square(224, 3, 64, 64)
        sdk_rep = utilization_report(sdk_solution(layer, array512))
        vw_rep = utilization_report(solve(layer, array512, "vw-sdk"))
        assert sdk_rep.mean_pct == pytest.approx(vw_rep.mean_pct, abs=1e-9)

    def test_footprint_only_counts_kernel_cells(self, array512):
        # SDK 4x4 on 3 channels: one chunk of 48 rows; each of the 256
        # columns holds 9*3 = 27 weights -> 27*256 cells.
        layer = ConvLayer.square(224, 3, 3, 64)
        rep = utilization_report(sdk_solution(layer, array512))
        assert len(rep.tiles) == 1
        assert rep.tiles[0].cells_used == 27 * 256

    def test_mid_channel_chunk_cut(self):
        # 4x4 window, IC 5, rows 50: 80 rows split 50 + 30 — the cut
        # falls mid-channel; totals must still sum to 9*IC per column.
        layer = ConvLayer.square(10, 3, 5, 4)
        arr = PIMArray(50, 16)
        sol = sdk_solution(layer, arr)
        if str(sol.window) == "4x4":
            rep = utilization_report(sol)
            per_col_total = sum(t.cells_used for t in rep.tiles) / (4 * 4)
            assert per_col_total == 9 * 5


class TestSMDUtilization:
    def test_block_diagonal_cells(self):
        layer = ConvLayer.square(8, 3, 3, 8)
        sol = smd_solution(layer, PIMArray(128, 64))
        rep = utilization_report(sol)
        assert len(rep.tiles) == 1
        assert rep.tiles[0].cells_used == 4 * 27 * 8

    def test_fallback_uses_im2col_accounting(self, resnet_l4, array512):
        smd_rep = utilization_report(smd_solution(resnet_l4, array512))
        im_rep = utilization_report(im2col_solution(resnet_l4, array512))
        assert smd_rep.fractions == im_rep.fractions


class TestOrdering:
    def test_vw_peak_beats_baselines_on_tiled_layers(self, vgg_l5,
                                                     array512):
        vw = utilization_report(solve(vgg_l5, array512, "vw-sdk"))
        im = utilization_report(solve(vgg_l5, array512, "im2col"))
        sdk = utilization_report(solve(vgg_l5, array512, "sdk"))
        assert vw.peak_pct > im.peak_pct
        assert vw.peak_pct > sdk.peak_pct

    def test_min_pct_accessor(self, vgg_l5, array512):
        rep = utilization_report(solve(vgg_l5, array512, "vw-sdk"))
        assert rep.min_pct <= rep.mean_pct <= rep.peak_pct
