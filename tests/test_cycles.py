"""Unit tests for the cycle model (eqs. 1-8), hand-computed values."""

import pytest

from repro import ConvLayer, MappingError, PIMArray, ParallelWindow
from repro.core.cycles import (
    ac_cycles,
    ar_cycles_fine_grained,
    ar_cycles_whole_channel,
    im2col_cycles,
    num_parallel_windows,
    parallel_window_grid,
    tiled_input_channels,
    tiled_output_channels,
    variable_window_cycles,
)


class TestParallelWindowCounting:
    """Eq. 3 in its ceil(windows / windows-per-PW) form."""

    def test_vgg_l2_4x4(self):
        layer = ConvLayer.square(224, 3, 64, 64)
        assert parallel_window_grid(layer, ParallelWindow.square(4)) == (111, 111)

    def test_resnet_l1_10x8(self):
        layer = ConvLayer.square(112, 7, 3, 64)
        win = ParallelWindow(h=8, w=10)
        assert parallel_window_grid(layer, win) == (53, 27)
        assert num_parallel_windows(layer, win) == 1431

    def test_vgg_l1_10x3(self):
        layer = ConvLayer.square(224, 3, 3, 64)
        assert num_parallel_windows(layer, ParallelWindow(h=3, w=10)) == 6216

    def test_window_equals_ifm(self):
        layer = ConvLayer.square(7, 3, 1, 1)
        assert num_parallel_windows(layer, ParallelWindow.square(7)) == 1

    def test_kernel_window_counts_all_windows(self):
        layer = ConvLayer.square(14, 3, 1, 1)
        assert num_parallel_windows(layer, ParallelWindow.square(3)) == 144

    def test_clamped_final_window(self):
        # 5 windows along an axis, 2 per PW -> 3 positions (last clamped).
        layer = ConvLayer.square(7, 3, 1, 1)
        win = ParallelWindow(h=3, w=4)
        assert parallel_window_grid(layer, win) == (5, 3)

    def test_window_too_large_raises(self):
        layer = ConvLayer.square(7, 3, 1, 1)
        with pytest.raises(MappingError):
            num_parallel_windows(layer, ParallelWindow(h=8, w=3))

    def test_matches_paper_eq3_form(self):
        # ceil((I - PW)/(PW - K + 1)) + 1 must equal our form everywhere.
        import math
        for ifm in range(5, 40):
            for pw in range(4, ifm + 1):
                layer = ConvLayer.square(ifm, 3, 1, 1)
                ours = parallel_window_grid(
                    layer, ParallelWindow(h=3, w=pw))[1]
                paper = math.ceil((ifm - pw) / (pw - 3 + 1)) + 1
                assert ours == paper, (ifm, pw)


class TestChannelTiling:
    """Eqs. 4-7."""

    def test_ic_t_basic(self):
        layer = ConvLayer.square(14, 3, 256, 256)
        arr = PIMArray.square(512)
        assert tiled_input_channels(arr, ParallelWindow(h=3, w=4), layer) == 42

    def test_ic_t_capped_at_layer(self):
        layer = ConvLayer.square(224, 3, 3, 64)
        arr = PIMArray.square(512)
        assert tiled_input_channels(arr, ParallelWindow(h=3, w=10), layer) == 3

    def test_ic_t_zero_raises(self):
        layer = ConvLayer.square(30, 3, 4, 4)
        with pytest.raises(MappingError):
            tiled_input_channels(PIMArray(16, 64), ParallelWindow.square(5),
                                 layer)

    def test_oc_t_basic(self):
        layer = ConvLayer.square(14, 3, 256, 256)
        arr = PIMArray.square(512)
        # 4x3 window -> 2 windows -> floor(512/2) = 256.
        assert tiled_output_channels(arr, ParallelWindow(h=3, w=4),
                                     layer) == 256

    def test_oc_t_capped_at_layer(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        arr = PIMArray.square(512)
        assert tiled_output_channels(arr, ParallelWindow(h=3, w=4), layer) == 8

    def test_oc_t_zero_raises(self):
        layer = ConvLayer.square(30, 3, 4, 4)
        with pytest.raises(MappingError):
            tiled_output_channels(PIMArray(512, 4), ParallelWindow.square(6),
                                  layer)

    def test_ar_whole_channel_resnet_l4(self):
        layer = ConvLayer.square(14, 3, 256, 256)
        assert ar_cycles_whole_channel(PIMArray.square(512),
                                       ParallelWindow(h=3, w=4), layer) == 7

    def test_ar_fine_grained_resnet_l5(self):
        layer = ConvLayer.square(7, 3, 512, 512)
        assert ar_cycles_fine_grained(PIMArray.square(512), layer) == 9

    def test_fine_vs_whole_channel_differ(self):
        # The Table I subtlety: fine 9 vs whole-channel 10 for L5.
        layer = ConvLayer.square(7, 3, 512, 512)
        arr = PIMArray.square(512)
        fine = ar_cycles_fine_grained(arr, layer)
        whole = ar_cycles_whole_channel(arr, ParallelWindow.square(3), layer)
        assert fine == 9
        assert whole == 10

    def test_ac_cycles(self):
        layer = ConvLayer.square(28, 3, 64, 512)
        arr = PIMArray(512, 128)
        assert ac_cycles(arr, ParallelWindow.square(3), layer) == 4


class TestEndToEnd:
    """Eq. 8 and the im2col variant, checked against Table I cells."""

    @pytest.mark.parametrize("ifm,k,ic,oc,win_w,win_h,expected", [
        (224, 3, 3, 64, 10, 3, 6216),      # VGG-13 L1
        (224, 3, 64, 64, 4, 4, 24642),     # VGG-13 L2
        (112, 3, 64, 128, 4, 4, 6050),     # VGG-13 L3
        (112, 3, 128, 128, 4, 4, 12100),   # VGG-13 L4
        (56, 3, 128, 256, 4, 3, 5832),     # VGG-13 L5
        (56, 3, 256, 256, 4, 3, 10206),    # VGG-13 L6
        (112, 7, 3, 64, 10, 8, 1431),      # ResNet-18 L1
        (56, 3, 64, 64, 4, 4, 1458),       # ResNet-18 L2
        (28, 3, 128, 128, 4, 4, 676),      # ResNet-18 L3
        (14, 3, 256, 256, 4, 3, 504),      # ResNet-18 L4
    ])
    def test_table1_vw_cells(self, ifm, k, ic, oc, win_w, win_h, expected):
        layer = ConvLayer.square(ifm, k, ic, oc)
        bd = variable_window_cycles(layer, PIMArray.square(512),
                                    ParallelWindow(h=win_h, w=win_w))
        assert bd.total == expected

    @pytest.mark.parametrize("ifm,k,ic,oc,expected", [
        (224, 3, 3, 64, 49284),     # VGG-13 L1
        (224, 3, 64, 64, 98568),    # VGG-13 L2
        (28, 3, 256, 512, 3380),    # VGG-13 L7
        (7, 3, 512, 512, 225),      # ResNet-18 L5 (the AR=9 case)
        (112, 7, 3, 64, 11236),     # ResNet-18 L1
    ])
    def test_im2col_cells(self, ifm, k, ic, oc, expected):
        layer = ConvLayer.square(ifm, k, ic, oc)
        assert im2col_cycles(layer, PIMArray.square(512)).total == expected

    def test_breakdown_total_is_product(self):
        layer = ConvLayer.square(14, 3, 256, 256)
        bd = variable_window_cycles(layer, PIMArray.square(512),
                                    ParallelWindow(h=3, w=4))
        assert bd.total == bd.n_pw * bd.ar * bd.ac
        assert (bd.n_pw, bd.ar, bd.ac) == (72, 7, 1)

    def test_window_smaller_than_kernel_raises(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        with pytest.raises(MappingError):
            variable_window_cycles(layer, PIMArray.square(512),
                                   ParallelWindow(h=2, w=8))

    def test_im2col_reports_full_channels_when_unsplit(self):
        layer = ConvLayer.square(14, 3, 8, 8)
        bd = im2col_cycles(layer, PIMArray.square(512))
        assert bd.ic_t == 8
        assert bd.ar == 1
