"""Unit tests for the VW-SDK ingredient ablations."""

import pytest

from repro import ConvLayer, PIMArray
from repro.networks import resnet18, vgg13
from repro.search import (
    im2col_solution,
    vwsdk_full_channels_only,
    vwsdk_solution,
    vwsdk_square_only,
)


class TestSquareOnly:
    def test_never_beats_full_search(self, array512):
        for layer in resnet18():
            full = vwsdk_solution(layer, array512).cycles
            square = vwsdk_square_only(layer, array512).cycles
            assert square >= full

    def test_window_is_square_or_kernel(self, array512):
        for layer in vgg13():
            sol = vwsdk_square_only(layer, array512)
            assert sol.window.is_square or sol.is_im2col_shaped

    def test_resnet_l4_square_beats_sdk(self, resnet_l4, array512):
        # Channel tiling alone (square 4x4, IC_t=32) already beats the
        # SDK baseline's im2col fallback on this layer: 576 < 720.
        sol = vwsdk_square_only(resnet_l4, array512)
        assert str(sol.window) == "4x4"
        assert sol.cycles == 576

    def test_rectangles_matter_on_resnet_l4(self, resnet_l4, array512):
        # ... but the 4x3 rectangle is still better: 504 < 576.
        assert vwsdk_solution(resnet_l4, array512).cycles == 504


class TestFullChannelsOnly:
    def test_never_beats_full_search(self, array512):
        for layer in resnet18():
            full = vwsdk_solution(layer, array512).cycles
            restricted = vwsdk_full_channels_only(layer, array512).cycles
            assert restricted >= full

    def test_falls_back_when_channels_cannot_fit(self, array512):
        # 512 channels x 9 cells never fit 512 rows: im2col fallback.
        layer = ConvLayer.square(7, 3, 512, 512)
        sol = vwsdk_full_channels_only(layer, array512)
        assert sol.cycles == im2col_solution(layer, array512).cycles

    def test_expands_window_when_channels_fit(self, array512):
        # IC=3: whole channels fit large windows; rectangles allowed.
        layer = ConvLayer.square(224, 3, 3, 64)
        sol = vwsdk_full_channels_only(layer, array512)
        assert sol.breakdown.ic_t == 3
        assert sol.cycles == vwsdk_solution(layer, array512).cycles

    def test_channel_tiling_is_the_bigger_lever_on_resnet(self, array512):
        full = sum(vwsdk_solution(l, array512).cycles for l in resnet18())
        squares = sum(vwsdk_square_only(l, array512).cycles
                      for l in resnet18())
        channels = sum(vwsdk_full_channels_only(l, array512).cycles
                       for l in resnet18())
        # Removing channel tiling hurts much more than removing
        # rectangles (paper's VW-SDK = SDK + both).
        assert (channels - full) > (squares - full)


class TestAblationBookkeeping:
    def test_candidates_counted(self, resnet_l4, array512):
        sol = vwsdk_square_only(resnet_l4, array512)
        assert sol.candidates_searched > 0

    def test_scheme_stays_vwsdk(self, resnet_l4, array512):
        assert vwsdk_square_only(resnet_l4, array512).scheme == "vw-sdk"
        assert (vwsdk_full_channels_only(resnet_l4, array512).scheme
                == "vw-sdk")
