"""Unit tests for tile packing onto shared crossbars."""

import pytest

from repro import ConvLayer, MappingError, PIMArray
from repro.chip import PackingResult, TileRequest, pack_network, pack_tiles
from repro.chip.allocation import residency_arrays
from repro.networks import resnet18, vgg13
from repro.search import solve


def _tiles(*dims):
    return [TileRequest(f"t{i}", r, c) for i, (r, c) in enumerate(dims)]


class TestPackTiles:
    def test_four_quadrants_fit_one_array(self):
        result = pack_tiles(_tiles((4, 4), (4, 4), (4, 4), (4, 4)),
                            PIMArray(8, 8))
        assert result.arrays_used == 1
        result.validate()

    def test_overflow_spills_to_second_array(self):
        result = pack_tiles(_tiles((8, 8), (8, 8)), PIMArray(8, 8))
        assert result.arrays_used == 2

    def test_shelves_stack_vertically(self):
        result = pack_tiles(_tiles((4, 8), (4, 8)), PIMArray(8, 8))
        assert result.arrays_used == 1
        rows = sorted(p.row_offset for p in result.placements)
        assert rows == [0, 4]

    def test_tile_larger_than_array_rejected(self):
        with pytest.raises(MappingError):
            pack_tiles(_tiles((9, 2)), PIMArray(8, 8))

    def test_degenerate_tile_rejected(self):
        with pytest.raises(MappingError):
            TileRequest("bad", 0, 4)

    def test_occupancy(self):
        result = pack_tiles(_tiles((8, 4), (8, 4)), PIMArray(8, 8))
        assert result.occupancy_pct == pytest.approx(100.0)

    def test_validate_catches_overlap(self):
        from repro.chip.packing import Placement
        tile = TileRequest("t", 4, 4)
        bad = PackingResult(
            array=PIMArray(8, 8),
            placements=(
                Placement(tile, 0, 0, 0),
                Placement(tile, 0, 2, 2),   # overlaps the first
            ))
        with pytest.raises(MappingError):
            bad.validate()

    def test_row_disjoint_column_overlap_allowed(self):
        # Same columns, different rows: legal (time-multiplexed reads).
        from repro.chip.packing import Placement
        tile = TileRequest("t", 4, 8)
        ok = PackingResult(
            array=PIMArray(8, 8),
            placements=(Placement(tile, 0, 0, 0), Placement(tile, 0, 4, 0)))
        ok.validate()

    def test_mixed_sizes_deterministic(self):
        tiles = _tiles((6, 3), (2, 8), (4, 4), (3, 3), (5, 2))
        a = pack_tiles(tiles, PIMArray(8, 8))
        b = pack_tiles(tiles, PIMArray(8, 8))
        assert a.placements == b.placements


class TestPackNetwork:
    def test_resnet_beats_naive_floor(self, array512):
        naive = sum(residency_arrays(solve(layer, array512, "vw-sdk"))
                    for layer in resnet18())
        packed = pack_network(resnet18(), array512)
        assert packed.arrays_used <= naive
        packed.validate()

    def test_vgg_packs_many_tiles(self, array512):
        packed = pack_network(vgg13(), array512)
        assert packed.arrays_used >= 1
        assert packed.occupancy_pct > 25.0

    def test_repeats_multiply_tiles(self, array512):
        from repro.networks import Network
        base = Network.from_layers("b", [ConvLayer.square(14, 3, 64, 64)])
        tripled = Network.from_layers(
            "t", [ConvLayer.square(14, 3, 64, 64, repeats=3)])
        p1 = pack_network(base, array512)
        p3 = pack_network(tripled, array512)
        assert len(p3.placements) == 3 * len(p1.placements)
