"""Unit tests for mapping-plan construction and validation."""

import numpy as np
import pytest

from repro import ConvLayer, MappingError, PIMArray
from repro.mapping import build_plan, build_smd_plan, render_plan
from repro.search import solve


def _plan_for(scheme, layer, arr):
    return build_plan(solve(layer, arr, scheme))


class TestPlanStructure:
    def test_grid_matches_breakdown(self, resnet_l4, array512):
        sol = solve(resnet_l4, array512, "vw-sdk")
        plan = build_plan(sol)
        assert plan.ar_tiles == sol.breakdown.ar
        assert plan.ac_tiles == sol.breakdown.ac

    def test_total_cycles_matches_solution(self, resnet_l4, array512):
        for scheme in ("im2col", "sdk", "vw-sdk"):
            sol = solve(resnet_l4, array512, scheme)
            assert build_plan(sol).total_cycles == sol.cycles

    def test_positions_match_npw(self, resnet_l4, array512):
        sol = solve(resnet_l4, array512, "vw-sdk")
        plan = build_plan(sol)
        assert len(plan.origins) == sol.breakdown.n_pw

    def test_origins_inside_ifm(self, resnet_l4, array512):
        sol = solve(resnet_l4, array512, "vw-sdk")
        plan = build_plan(sol)
        for oy, ox in plan.origins:
            assert 0 <= oy <= resnet_l4.ifm_h - plan.window.h
            assert 0 <= ox <= resnet_l4.ifm_w - plan.window.w

    def test_tiles_fit_array(self, vgg_l5, array512):
        plan = _plan_for("vw-sdk", vgg_l5, array512)
        for row in plan.tiles:
            for tile in row:
                assert tile.rows_used <= array512.rows
                assert tile.cols_used <= array512.cols

    def test_validate_passes_all_schemes(self, resnet_l4, array512):
        for scheme in ("im2col", "sdk", "vw-sdk"):
            _plan_for(scheme, resnet_l4, array512).validate()

    def test_whole_channel_tiles_partition_ic(self, vgg_l5, array512):
        plan = _plan_for("vw-sdk", vgg_l5, array512)
        slices = [row[0].channel_slice for row in plan.tiles]
        assert slices[0][0] == 0
        assert slices[-1][1] == vgg_l5.in_channels
        for (a, b), (c, d) in zip(slices[:-1], slices[1:]):
            assert b == c

    def test_fine_grained_rows_cover_im2col_matrix(self, array512):
        layer = ConvLayer.square(7, 3, 512, 512)
        plan = _plan_for("im2col", layer, array512)
        total_rows = sum(row[0].rows_used for row in plan.tiles)
        assert total_rows == layer.im2col_rows


class TestWeights:
    def test_im2col_weights_are_flattened_kernel(self):
        layer = ConvLayer.square(5, 3, 2, 3)
        arr = PIMArray(32, 8)
        plan = _plan_for("im2col", layer, arr)
        kernel = np.arange(layer.weight_count, dtype=float).reshape(
            layer.out_channels, layer.in_channels, 3, 3)
        weights, mask = plan.tiles[0][0].build_weights(kernel, layer)
        assert mask.all()           # im2col: every cell in the tile used
        expected = kernel.reshape(layer.out_channels, -1).T
        np.testing.assert_array_equal(weights, expected)

    def test_vw_weights_shifted_copies(self):
        layer = ConvLayer.square(6, 3, 1, 1)
        arr = PIMArray(16, 4)
        sol = solve(layer, arr, "vw-sdk")
        plan = build_plan(sol)
        kernel = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        tile = plan.tiles[0][0]
        weights, mask = tile.build_weights(kernel, layer)
        # Every column must contain each kernel weight exactly once.
        assert (mask.sum(axis=0) == 9).all()
        col_sums = weights.sum(axis=0)
        np.testing.assert_allclose(col_sums, kernel.sum())

    def test_used_cells_matches_mask(self, resnet_l4, array512):
        plan = _plan_for("vw-sdk", resnet_l4, array512)
        kernel = np.ones((resnet_l4.out_channels, resnet_l4.in_channels,
                          3, 3))
        tile = plan.tiles[0][0]
        _, mask = tile.build_weights(kernel, resnet_l4)
        assert tile.used_cells(resnet_l4) == int(mask.sum())

    def test_mask_footprint_per_column(self, vgg_l5, array512):
        plan = _plan_for("vw-sdk", vgg_l5, array512)
        tile = plan.tiles[0][0]   # full 42-channel tile
        kernel = np.ones((vgg_l5.out_channels, vgg_l5.in_channels, 3, 3))
        _, mask = tile.build_weights(kernel, vgg_l5)
        assert (mask.sum(axis=0) == 9 * 42).all()


class TestSMDPlan:
    def test_cycles_match(self):
        layer = ConvLayer.square(8, 3, 3, 8)
        sol = solve(layer, PIMArray(128, 64), "smd")
        plan = build_smd_plan(sol)
        assert plan.total_cycles == sol.cycles

    def test_groups_cover_all_windows(self):
        layer = ConvLayer.square(8, 3, 3, 8)
        sol = solve(layer, PIMArray(128, 64), "smd")
        plan = build_smd_plan(sol)
        seen = {w for group in plan.window_groups for w in group}
        assert seen == set(range(layer.num_windows))

    def test_block_diagonal_weights(self):
        layer = ConvLayer.square(8, 3, 3, 8)
        sol = solve(layer, PIMArray(128, 64), "smd")
        plan = build_smd_plan(sol)
        kernel = np.ones((8, 3, 3, 3))
        weights, mask = plan.build_weights(kernel)
        assert weights.shape == (4 * 27, 4 * 8)
        # Off-diagonal blocks are empty.
        assert weights[0:27, 8:].sum() == 0
        assert mask[0:27, 0:8].all()

    def test_rejects_non_smd_solution(self, resnet_l4, array512):
        with pytest.raises(MappingError):
            build_smd_plan(solve(resnet_l4, array512, "vw-sdk"))

    def test_build_plan_rejects_duplicated_smd(self):
        layer = ConvLayer.square(8, 3, 3, 8)
        sol = solve(layer, PIMArray(128, 64), "smd")
        with pytest.raises(MappingError):
            build_plan(sol)


class TestAsciiArt:
    def test_render_small_plan(self):
        layer = ConvLayer.square(6, 3, 2, 2)
        plan = _plan_for("vw-sdk", layer, PIMArray(40, 24))
        text = render_plan(plan)
        assert "vw-sdk layout" in text
        assert "." in text    # idle cells visible

    def test_render_too_large_tile_raises(self, vgg_l5, array512):
        from repro.mapping import render_tile
        plan = _plan_for("vw-sdk", vgg_l5, array512)
        with pytest.raises(MappingError):
            render_tile(plan, plan.tiles[0][0])

    def test_render_im2col_has_no_idle_cells(self):
        layer = ConvLayer.square(5, 3, 2, 2)
        plan = _plan_for("im2col", layer, PIMArray(32, 8))
        body = render_plan(plan).splitlines()
        cell_lines = [ln for ln in body if ln.strip().startswith("c")]
        assert cell_lines
        assert not any("." in ln.split()[-1] for ln in cell_lines)
