"""Unit tests for PIMArray."""

import pytest

from repro import ConfigurationError, PIMArray
from repro.core import PAPER_ARRAY_SIZES


class TestConstruction:
    def test_basic(self):
        arr = PIMArray(512, 256)
        assert arr.rows == 512
        assert arr.cols == 256

    def test_square_helper(self):
        arr = PIMArray.square(128)
        assert (arr.rows, arr.cols) == (128, 128)
        assert arr.is_square

    def test_non_square_flag(self):
        assert not PIMArray(512, 256).is_square

    def test_cells(self):
        assert PIMArray(512, 512).cells == 262144

    def test_zero_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            PIMArray(0, 8)

    def test_negative_cols_rejected(self):
        with pytest.raises(ConfigurationError):
            PIMArray(8, -1)

    def test_non_power_of_two_accepted(self):
        # The paper writes 2^X but nothing requires powers of two.
        assert PIMArray(100, 60).cells == 6000


class TestParse:
    def test_rows_by_cols(self):
        assert PIMArray.parse("512x256") == PIMArray(512, 256)

    def test_star_separator(self):
        assert PIMArray.parse("128*64") == PIMArray(128, 64)

    def test_uppercase(self):
        assert PIMArray.parse("128X64") == PIMArray(128, 64)

    def test_single_number_is_square(self):
        assert PIMArray.parse("256") == PIMArray(256, 256)

    def test_whitespace_tolerated(self):
        assert PIMArray.parse("  64x32 ") == PIMArray(64, 32)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            PIMArray.parse("wide")


class TestMisc:
    def test_str(self):
        assert str(PIMArray(512, 256)) == "512x256"

    def test_repr_without_name(self):
        assert repr(PIMArray(8, 4)) == "PIMArray(rows=8, cols=4)"

    def test_scaled(self):
        assert PIMArray(128, 64).scaled(2, 4) == PIMArray(256, 256)

    def test_scaled_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            PIMArray(8, 8).scaled(0, 1)

    def test_ordering(self):
        assert PIMArray(128, 128) < PIMArray(256, 256)

    def test_paper_sizes_present(self):
        labels = {str(a) for a in PAPER_ARRAY_SIZES}
        assert labels == {"128x128", "128x256", "256x256", "512x256",
                          "512x512"}

    def test_paper_sizes_count(self):
        assert len(PAPER_ARRAY_SIZES) == 5
