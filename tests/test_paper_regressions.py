"""Regression lock on every number the paper prints.

If any of these fail, the reproduction has drifted from the paper.
DESIGN.md section 2 documents how each value was derived.
"""

import pytest

from repro import ConvLayer, PIMArray, compare_schemes, resnet18, vgg13
from repro.core.utilization import utilization_report
from repro.search import solve


@pytest.fixture(scope="module")
def vgg_reports():
    return compare_schemes(vgg13(), PIMArray.square(512))


@pytest.fixture(scope="module")
def resnet_reports():
    return compare_schemes(resnet18(), PIMArray.square(512))


class TestHeadlineNumbers:
    """Abstract + Section V claims."""

    def test_vgg13_totals(self, vgg_reports):
        assert vgg_reports["im2col"].total_cycles == 243736
        assert vgg_reports["sdk"].total_cycles == 114697
        assert vgg_reports["vw-sdk"].total_cycles == 77102

    def test_resnet18_totals(self, resnet_reports):
        assert resnet_reports["im2col"].total_cycles == 20041
        assert resnet_reports["sdk"].total_cycles == 7240
        assert resnet_reports["vw-sdk"].total_cycles == 4294

    def test_abstract_speedup_169(self, resnet_reports):
        speedup = resnet_reports["vw-sdk"].speedup_over(
            resnet_reports["sdk"])
        assert round(speedup, 2) == 1.69

    def test_abstract_speedup_467(self, resnet_reports):
        speedup = resnet_reports["vw-sdk"].speedup_over(
            resnet_reports["im2col"])
        assert round(speedup, 2) == 4.67

    def test_vgg_speedups_316_149(self, vgg_reports):
        vs_im = vgg_reports["vw-sdk"].speedup_over(vgg_reports["im2col"])
        vs_sdk = vgg_reports["vw-sdk"].speedup_over(vgg_reports["sdk"])
        assert round(vs_im, 2) == 3.16
        assert round(vs_sdk, 2) == 1.49


class TestPerLayerCycles:
    """Every per-layer cycle count behind Table I's totals."""

    VGG_SDK = [12321, 24642, 6050, 36300, 8748, 14580, 3380, 6084, 1296,
               1296]
    VGG_VW = [6216, 24642, 6050, 12100, 5832, 10206, 3380, 6084, 1296,
              1296]
    VGG_IM = [49284, 98568, 24200, 36300, 8748, 14580, 3380, 6084, 1296,
              1296]
    RESNET_SDK = [2809, 1458, 2028, 720, 225]
    RESNET_VW = [1431, 1458, 676, 504, 225]
    RESNET_IM = [11236, 5832, 2028, 720, 225]

    def test_vgg_layer_cycles(self, vgg_reports):
        for scheme, expected in (("sdk", self.VGG_SDK),
                                 ("vw-sdk", self.VGG_VW),
                                 ("im2col", self.VGG_IM)):
            measured = [s.cycles for s in vgg_reports[scheme].solutions]
            assert measured == expected, scheme

    def test_resnet_layer_cycles(self, resnet_reports):
        for scheme, expected in (("sdk", self.RESNET_SDK),
                                 ("vw-sdk", self.RESNET_VW),
                                 ("im2col", self.RESNET_IM)):
            measured = [s.cycles for s in resnet_reports[scheme].solutions]
            assert measured == expected, scheme


class TestWindowShapes:
    """Every window shape printed in Table I."""

    def test_vgg_vw_windows(self, vgg_reports):
        windows = [str(s.window) for s in vgg_reports["vw-sdk"].solutions]
        assert windows == ["10x3", "4x4", "4x4", "4x4", "4x3", "4x3",
                           "3x3", "3x3", "3x3", "3x3"]

    def test_vgg_sdk_windows(self, vgg_reports):
        windows = [str(s.window) for s in vgg_reports["sdk"].solutions]
        assert windows == ["4x4", "4x4", "4x4", "3x3", "3x3", "3x3",
                           "3x3", "3x3", "3x3", "3x3"]

    def test_resnet_vw_windows(self, resnet_reports):
        windows = [str(s.window) for s in resnet_reports["vw-sdk"].solutions]
        assert windows == ["10x8", "4x4", "4x4", "4x3", "3x3"]

    def test_resnet_sdk_windows(self, resnet_reports):
        windows = [str(s.window) for s in resnet_reports["sdk"].solutions]
        assert windows == ["8x8", "4x4", "3x3", "3x3", "3x3"]

    def test_tiled_channels_42_and_32(self, resnet_reports):
        vw = resnet_reports["vw-sdk"].solutions
        assert vw[1].breakdown.ic_t == 32    # 4x4 window
        assert vw[3].breakdown.ic_t == 42    # 4x3 window


class TestUtilizationClaims:
    """Section V-B utilization statements."""

    def test_73_8_percent_at_vgg_layer5(self):
        layer = ConvLayer.square(56, 3, 128, 256)
        sol = solve(layer, PIMArray.square(512), "vw-sdk")
        assert utilization_report(sol).peak_pct == pytest.approx(73.8,
                                                                 abs=0.05)

    def test_sdk_vw_equal_on_layer2_and_3(self, vgg_reports):
        # "the utilizations of the SDK-based algorithm and VW-SDK are
        # equal until Layer 3" — layers 2 and 3 share the 4x4 shape.
        for idx in (1, 2):
            sdk_u = utilization_report(vgg_reports["sdk"].solutions[idx])
            vw_u = utilization_report(vgg_reports["vw-sdk"].solutions[idx])
            assert sdk_u.mean_pct == pytest.approx(vw_u.mean_pct, abs=1e-9)

    def test_vw_beats_baselines_after_layer3(self, vgg_reports):
        for idx in (3, 4, 5):
            vw_u = utilization_report(vgg_reports["vw-sdk"].solutions[idx])
            sdk_u = utilization_report(vgg_reports["sdk"].solutions[idx])
            im_u = utilization_report(vgg_reports["im2col"].solutions[idx])
            assert vw_u.peak_pct > sdk_u.peak_pct
            assert vw_u.peak_pct > im_u.peak_pct


class TestFig8bSweep:
    """Fig. 8(b): total speedups across the five paper arrays."""

    @pytest.mark.parametrize("array_spec", ["128x128", "128x256",
                                            "256x256", "512x256",
                                            "512x512"])
    def test_hierarchy_on_every_array(self, array_spec):
        array = PIMArray.parse(array_spec)
        for net in (vgg13(), resnet18()):
            reports = compare_schemes(net, array)
            im = reports["im2col"].total_cycles
            sdk = reports["sdk"].total_cycles
            vw = reports["vw-sdk"].total_cycles
            assert vw <= sdk <= im

    def test_speedup_monotone_in_array_area(self):
        sizes = [PIMArray(128, 128), PIMArray(256, 256), PIMArray(512, 512)]
        for net in (vgg13(), resnet18()):
            speedups = []
            for array in sizes:
                reports = compare_schemes(net, array)
                speedups.append(reports["vw-sdk"].speedup_over(
                    reports["im2col"]))
            assert speedups == sorted(speedups)
