"""Unit tests for the design-space-exploration helpers."""

import pytest

from repro import ConvLayer, PIMArray
from repro.core.types import ReproError
from repro.dse import (
    InfeasibleTargetError,
    array_candidates,
    array_pareto,
    network_cycles,
    pareto_front,
    smallest_chip,
    smallest_square_array,
    window_pareto,
)
from repro.networks import Network, resnet18


class TestSmallestArray:
    def test_resnet_target_4294(self):
        arr = smallest_square_array(resnet18(), 4294)
        assert arr is not None
        # 512x512 achieves exactly 4294; the smallest array might be a
        # bit smaller, but never larger.
        assert arr.rows <= 512
        assert network_cycles(resnet18(), arr) <= 4294

    def test_result_is_minimal(self):
        arr = smallest_square_array(resnet18(), 10000, lo=8, hi=2048)
        smaller = PIMArray.square(arr.rows - 1)
        assert network_cycles(resnet18(), smaller) > 10000

    def test_unreachable_target_raises_typed_error(self):
        net = Network.from_layers("t", [ConvLayer.square(14, 3, 8, 8)])
        with pytest.raises(InfeasibleTargetError) as info:
            smallest_square_array(net, 1, hi=16)
        # The error reports the best achievable total at the bound and
        # stays catchable as the library-wide base class.
        assert info.value.best == network_cycles(net, PIMArray.square(16))
        assert isinstance(info.value, ReproError)

    def test_validation(self):
        with pytest.raises(Exception):
            smallest_square_array(resnet18(), 0)

    def test_plain_layer_list_infeasible_raises_typed_error(self):
        # The engine layer deliberately accepts plain layer iterables
        # (no .name); the infeasible path must too.
        layers = [ConvLayer.square(14, 3, 8, 8)]
        with pytest.raises(InfeasibleTargetError):
            smallest_square_array(layers, 1, hi=16)
        with pytest.raises(InfeasibleTargetError):
            smallest_chip(layers, PIMArray.square(16), 1, max_arrays=2)


class TestSmallestChip:
    def test_meets_target(self):
        chip = smallest_chip(resnet18(), PIMArray.square(512), 200,
                             max_arrays=4096)
        assert chip is not None
        from repro.chip import plan_pipeline
        assert plan_pipeline(resnet18(), chip).bottleneck_cycles <= 200

    def test_minimality(self):
        from repro.chip import ChipConfig, plan_pipeline
        from repro.chip.pipeline import InsufficientArraysError
        chip = smallest_chip(resnet18(), PIMArray.square(512), 200,
                             max_arrays=4096)
        try:
            plan = plan_pipeline(resnet18(),
                                 ChipConfig(chip.array,
                                            chip.num_arrays - 1))
            assert plan.bottleneck_cycles > 200
        except InsufficientArraysError:
            pass  # one fewer array cannot even hold the weights

    def test_unreachable_raises_typed_error(self):
        with pytest.raises(InfeasibleTargetError) as info:
            smallest_chip(resnet18(), PIMArray.square(512), 1,
                          max_arrays=64)
        from repro.chip import ChipConfig, plan_pipeline
        best = plan_pipeline(resnet18(),
                             ChipConfig(PIMArray.square(512), 64)
                             ).bottleneck_cycles
        assert info.value.best == best

    def test_unreachable_floor_raises_with_no_best(self):
        # Two arrays cannot even hold ResNet-18's weights resident.
        with pytest.raises(InfeasibleTargetError) as info:
            smallest_chip(resnet18(), PIMArray.square(512), 10000,
                          max_arrays=2)
        assert info.value.best is None


class TestPareto:
    def test_front_basics(self):
        points = [(1, 5), (2, 2), (3, 3), (5, 1), (4, 4)]
        front = pareto_front(points, lambda p: p)
        assert set(front) == {(1, 5), (2, 2), (5, 1)}

    def test_single_point(self):
        assert pareto_front([(1, 1)], lambda p: p) == [(1, 1)]

    def test_duplicates_survive(self):
        points = [(1, 1), (1, 1)]
        assert len(pareto_front(points, lambda p: p)) == 2

    def test_window_pareto_contains_cycle_optimum(self):
        from repro.search import vwsdk_solution
        layer = ConvLayer.square(14, 3, 256, 256)
        arr = PIMArray.square(512)
        front = window_pareto(layer, arr)
        best = vwsdk_solution(layer, arr)
        assert front[0].cycles == best.cycles

    def test_array_pareto_paper_points(self):
        candidates = [PIMArray.square(s) for s in (512, 128, 256)]
        front = array_pareto(resnet18(), candidates)
        assert [p.array.rows for p in front] == [128, 256, 512]
        assert [p.cycles for p in front] == [36310, 10287, 4294]
        assert front[0].cells == 128 * 128

    def test_array_pareto_frontier_invariant(self):
        candidates = [PIMArray(r, c)
                      for r in (64, 128, 200, 512) for c in (64, 256, 512)]
        front = array_pareto(resnet18(), candidates)
        cells = [p.cells for p in front]
        cycles = [p.cycles for p in front]
        # Strictly increasing cost must buy strictly fewer cycles.
        assert cells == sorted(set(cells))
        assert cycles == sorted(cycles, reverse=True)
        assert len(set(cycles)) == len(cycles)

    def test_array_pareto_drops_duplicates(self):
        twice = [PIMArray.square(256), PIMArray.square(256)]
        front = array_pareto(resnet18(), twice)
        assert len(front) == 1

    def test_array_pareto_fallback_scheme(self):
        candidates = [PIMArray.square(s) for s in (128, 512)]
        front = array_pareto(resnet18(), candidates, scheme="sdk")
        assert [p.cycles for p in front] == [
            network_cycles(resnet18(), c, "sdk") for c in candidates]

    def test_array_candidates_respect_cells_budget(self):
        for arr in array_candidates(64 * 64):
            assert arr.cells <= 64 * 64

    def test_array_candidates_non_square_superset_of_square(self):
        square = set(array_candidates(512 * 512, square_only=True))
        full = set(array_candidates(512 * 512))
        assert square < full
        assert any(a.rows != a.cols for a in full)

    def test_array_candidates_custom_sides(self):
        got = array_candidates(128 * 128, sides=(64, 128))
        assert {str(a) for a in got} == {"64x64", "64x128", "128x64",
                                         "128x128"}

    def test_array_candidates_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            array_candidates(0)

    def test_generated_non_square_frontier_dominates_square(self):
        # The ISSUE acceptance criterion: on the README network the
        # non-square frontier dominates-or-equals the square-only one.
        net = resnet18()
        square = array_pareto(net, square_only=True)
        full = array_pareto(net)
        for point in square:
            assert any(q.cells <= point.cells and q.cycles <= point.cycles
                       for q in full), point
        # And it strictly improves somewhere: some rectangle beats the
        # best square of equal-or-larger cost.
        assert any(q.array.rows != q.array.cols for q in full)

    def test_generated_frontier_matches_explicit_candidates(self):
        net = resnet18()
        explicit = array_pareto(net, array_candidates(256 * 256))
        generated = array_pareto(net, max_cells=256 * 256)
        assert [(p.array, p.cycles) for p in explicit] == \
            [(p.array, p.cycles) for p in generated]

    def test_window_pareto_sorted_and_tradeoff(self):
        layer = ConvLayer.square(14, 3, 64, 64)
        front = window_pareto(layer, PIMArray(128, 64))
        cycles = [p.cycles for p in front]
        assert cycles == sorted(cycles)
        utils = [p.mean_utilization_pct for p in front]
        # Along the frontier, giving up cycles must buy utilization.
        assert utils == sorted(utils)
