"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConvLayer, PIMArray
from repro.networks import resnet18, vgg13


@pytest.fixture
def array512() -> PIMArray:
    """The paper's main 512x512 array."""
    return PIMArray.square(512)


@pytest.fixture
def resnet_l4() -> ConvLayer:
    """ResNet-18 layer 4 (14x14, 3x3x256x256) — the 4x3-window poster child."""
    return ConvLayer.square(14, 3, 256, 256)


@pytest.fixture
def vgg_l5() -> ConvLayer:
    """VGG-13 layer 5 (56x56, 3x3x128x256) — the 73.8%-utilization layer."""
    return ConvLayer.square(56, 3, 128, 256)


@pytest.fixture
def vgg13_net():
    """The paper's VGG-13 network."""
    return vgg13()


@pytest.fixture
def resnet18_net():
    """The paper's ResNet-18 network."""
    return resnet18()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for functional tests."""
    return np.random.default_rng(1234)


def random_layer_inputs(layer: ConvLayer, rng: np.random.Generator,
                        low: int = -4, high: int = 5):
    """Integer-valued float IFM/kernel for exact functional checks."""
    ifm = rng.integers(low, high, (layer.in_channels, layer.ifm_h,
                                   layer.ifm_w)).astype(float)
    kernel = rng.integers(low, high, (layer.out_channels, layer.in_channels,
                                      layer.kernel_h, layer.kernel_w)
                          ).astype(float)
    return ifm, kernel
