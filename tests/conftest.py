"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import ConvLayer, PIMArray
from repro.networks import resnet18, vgg13


@pytest.fixture(scope="session", autouse=True)
def fault_smoke(tmp_path_factory):
    """CI fault-injection smoke mode (``REPRO_FAULT_SMOKE=1``).

    Installs a seeded :class:`~repro.runtime.faults.FaultPlan` (store
    I/O errors + backend crashes) for the whole session and swaps the
    process-wide default engine for one carrying the full runtime
    substrate — persistent store and an always-on circuit breaker.
    Everything routed through ``default_engine()`` then runs with
    faults firing underneath; the suite must still pass, because the
    substrate's contract is that injected faults never change answers.

    Inert without the environment variable (zero cost for local runs).
    ``REPRO_FAULT_SEED`` overrides the plan seed.
    """
    if not os.environ.get("REPRO_FAULT_SMOKE"):
        yield
        return
    from repro.api.engine import MappingEngine, set_default_engine
    from repro.runtime import FaultPlan, FaultSpec, SolutionStore

    seed = int(os.environ.get("REPRO_FAULT_SEED", "20260808"))
    plan = FaultPlan(seed=seed, specs=(
        FaultSpec("store.append", probability=0.05,
                  error=lambda s: OSError(f"injected EIO at {s}")),
        FaultSpec("store.read", probability=0.05,
                  error=lambda s: OSError(f"injected EIO at {s}")),
        FaultSpec("backend.geo_cycles", probability=0.02),
        FaultSpec("backend.finish", probability=0.02),
    ))
    store = SolutionStore(
        tmp_path_factory.mktemp("fault-smoke") / "solutions.jsonl")
    engine = MappingEngine(breaker=True, store=store)
    set_default_engine(engine)
    with plan.installed():
        yield
    set_default_engine(None)
    store.close()


@pytest.fixture
def array512() -> PIMArray:
    """The paper's main 512x512 array."""
    return PIMArray.square(512)


@pytest.fixture
def resnet_l4() -> ConvLayer:
    """ResNet-18 layer 4 (14x14, 3x3x256x256) — the 4x3-window poster child."""
    return ConvLayer.square(14, 3, 256, 256)


@pytest.fixture
def vgg_l5() -> ConvLayer:
    """VGG-13 layer 5 (56x56, 3x3x128x256) — the 73.8%-utilization layer."""
    return ConvLayer.square(56, 3, 128, 256)


@pytest.fixture
def vgg13_net():
    """The paper's VGG-13 network."""
    return vgg13()


@pytest.fixture
def resnet18_net():
    """The paper's ResNet-18 network."""
    return resnet18()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for functional tests."""
    return np.random.default_rng(1234)


def random_layer_inputs(layer: ConvLayer, rng: np.random.Generator,
                        low: int = -4, high: int = 5):
    """Integer-valued float IFM/kernel for exact functional checks."""
    ifm = rng.integers(low, high, (layer.in_channels, layer.ifm_h,
                                   layer.ifm_w)).astype(float)
    kernel = rng.integers(low, high, (layer.out_channels, layer.in_channels,
                                      layer.kernel_h, layer.kernel_w)
                          ).astype(float)
    return ifm, kernel
