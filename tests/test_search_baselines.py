"""Unit tests for the im2col and SMD baselines plus the solve dispatcher."""

import pytest

from repro import ConvLayer, PIMArray
from repro.search import (
    best_of,
    enumerate_feasible,
    im2col_solution,
    smd_solution,
    solve,
)
from repro.search.smd import smd_duplication


class TestIm2col:
    def test_small_layer_fits(self):
        layer = ConvLayer.square(8, 3, 4, 4)
        sol = im2col_solution(layer, PIMArray(64, 16))
        assert sol.cycles == layer.num_windows

    def test_row_tiling(self):
        layer = ConvLayer.square(7, 3, 512, 512)
        sol = im2col_solution(layer, PIMArray.square(512))
        assert sol.breakdown.ar == 9
        assert sol.cycles == 225

    def test_column_tiling(self):
        layer = ConvLayer.square(8, 3, 4, 100)
        sol = im2col_solution(layer, PIMArray(64, 32))
        assert sol.breakdown.ac == 4

    def test_window_is_kernel(self):
        layer = ConvLayer.square(8, 3, 4, 4)
        sol = im2col_solution(layer, PIMArray(64, 16))
        assert sol.is_im2col_shaped

    def test_table_cell(self):
        layer = ConvLayer.square(7, 3, 512, 512)
        sol = im2col_solution(layer, PIMArray.square(512))
        assert sol.table_cell == "3x3x512x512"

    def test_always_feasible_on_tiny_array(self):
        layer = ConvLayer.square(14, 3, 64, 64)
        sol = im2col_solution(layer, PIMArray(4, 2))
        assert sol.cycles == 144 * 144 * 32
        # AR = ceil(576/4) = 144, AC = ceil(64/2) = 32.


class TestSMD:
    def test_duplication_limited_by_columns(self):
        layer = ConvLayer.square(8, 3, 3, 8)   # 27 rows, 8 cols/copy
        assert smd_duplication(layer, PIMArray(128, 64)) == 4

    def test_duplication_limited_by_rows(self):
        layer = ConvLayer.square(8, 3, 3, 2)   # 27 rows/copy
        assert smd_duplication(layer, PIMArray(60, 512)) == 2

    def test_cycles_divided_by_duplication(self):
        layer = ConvLayer.square(8, 3, 3, 8)   # 36 windows
        sol = smd_solution(layer, PIMArray(128, 64))
        assert sol.duplication == 4
        assert sol.cycles == 9

    def test_clamped_group_count(self):
        layer = ConvLayer.square(7, 3, 3, 8)   # 25 windows
        sol = smd_solution(layer, PIMArray(128, 64))
        assert sol.duplication == 4
        assert sol.cycles == 7                 # ceil(25/4)

    def test_fallback_to_im2col(self):
        layer = ConvLayer.square(14, 3, 256, 256)
        arr = PIMArray.square(512)
        assert (smd_solution(layer, arr).cycles
                == im2col_solution(layer, arr).cycles)

    def test_beats_im2col_when_it_fits(self):
        layer = ConvLayer.square(8, 3, 3, 8)
        arr = PIMArray(128, 64)
        assert smd_solution(layer, arr).cycles < im2col_solution(
            layer, arr).cycles

    def test_scheme_label(self):
        layer = ConvLayer.square(8, 3, 3, 8)
        assert smd_solution(layer, PIMArray(128, 64)).scheme == "smd"


class TestSolveDispatcher:
    def test_all_schemes(self, resnet_l4, array512):
        for scheme in ("im2col", "smd", "sdk", "vw-sdk"):
            assert solve(resnet_l4, array512, scheme).scheme == scheme

    def test_unknown_scheme(self, resnet_l4, array512):
        with pytest.raises(ValueError, match="unknown scheme"):
            solve(resnet_l4, array512, "magic")

    def test_scheme_ordering_holds(self, resnet_l4, array512):
        # The paper's hierarchy: vw-sdk <= sdk <= im2col in cycles.
        im = solve(resnet_l4, array512, "im2col").cycles
        sdk = solve(resnet_l4, array512, "sdk").cycles
        vw = solve(resnet_l4, array512, "vw-sdk").cycles
        assert vw <= sdk <= im


class TestResultHelpers:
    def test_best_of(self, resnet_l4, array512):
        a = solve(resnet_l4, array512, "im2col")
        b = solve(resnet_l4, array512, "vw-sdk")
        assert best_of(a, b) is b

    def test_best_of_requires_solutions(self):
        with pytest.raises(ValueError):
            best_of(None, None)

    def test_speedup_requires_same_layer(self, resnet_l4, vgg_l5, array512):
        a = solve(resnet_l4, array512, "im2col")
        b = solve(vgg_l5, array512, "im2col")
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_describe_mentions_key_fields(self, resnet_l4, array512):
        text = solve(resnet_l4, array512, "vw-sdk").describe()
        assert "4x3" in text
        assert "504" in text

    def test_enumerate_feasible_includes_kernel_window(self, resnet_l4,
                                                       array512):
        sols = list(enumerate_feasible(resnet_l4, array512))
        assert any(s.is_im2col_shaped for s in sols)
        assert len(sols) >= 100
