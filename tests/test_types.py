"""Unit tests for repro.core.types."""

import math

import pytest

from repro.core.types import (
    ConfigurationError,
    as_pair,
    ceil_div,
    require_non_negative_int,
    require_positive_int,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 2) == 4

    def test_rounds_up(self):
        assert ceil_div(7, 2) == 4

    def test_one_over_large(self):
        assert ceil_div(1, 1000) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_paper_resnet_l5_im2col(self):
        # ceil(3*3*512 / 512) = 9 — the Table I subtlety.
        assert ceil_div(3 * 3 * 512, 512) == 9

    def test_paper_resnet_l4_whole_channel(self):
        # ceil(256 / 42) = 7 — VW-SDK layer 4.
        assert ceil_div(256, 42) == 7

    def test_large_values_exact(self):
        # Would fail with float math: 10**17 + 1 is not float-exact.
        big = 10 ** 17 + 1
        assert ceil_div(big, 1) == big

    def test_zero_denominator_rejected(self):
        with pytest.raises(ConfigurationError):
            ceil_div(1, 0)

    def test_negative_denominator_rejected(self):
        with pytest.raises(ConfigurationError):
            ceil_div(1, -2)

    def test_negative_numerator_rejected(self):
        with pytest.raises(ConfigurationError):
            ceil_div(-1, 2)


class TestRequirePositiveInt:
    def test_plain_int(self):
        assert require_positive_int("x", 7) == 7

    def test_integral_float_accepted(self):
        assert require_positive_int("x", 7.0) == 7

    def test_fractional_float_rejected(self):
        with pytest.raises(ConfigurationError):
            require_positive_int("x", 7.5)

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            require_positive_int("x", 0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            require_positive_int("x", -3)

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            require_positive_int("x", True)

    def test_string_rejected(self):
        with pytest.raises(ConfigurationError):
            require_positive_int("x", "three")

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            require_positive_int("x", math.nan)

    def test_error_mentions_name(self):
        with pytest.raises(ConfigurationError, match="rows"):
            require_positive_int("rows", -1)


class TestRequireNonNegativeInt:
    def test_zero_ok(self):
        assert require_non_negative_int("pad", 0) == 0

    def test_positive_ok(self):
        assert require_non_negative_int("pad", 3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            require_non_negative_int("pad", -1)


class TestAsPair:
    def test_scalar_duplicates(self):
        assert as_pair("k", 3) == (3, 3)

    def test_tuple_passthrough(self):
        assert as_pair("k", (3, 5)) == (3, 5)

    def test_list_accepted(self):
        assert as_pair("k", [2, 4]) == (2, 4)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            as_pair("k", (1, 2, 3))

    def test_non_positive_member_rejected(self):
        with pytest.raises(ConfigurationError):
            as_pair("k", (3, 0))
