"""Unit tests for the latency/energy cost model."""

import pytest

from repro import ConfigurationError, ConvLayer, CostParams, PIMArray, \
    cost_report
from repro.search import im2col_solution, solve


class TestCostParams:
    def test_defaults_positive(self):
        params = CostParams()
        assert params.adc_energy_pj > 0
        assert params.cycle_time_ns > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostParams(adc_energy_pj=-1.0)

    def test_negative_raises_configuration_error(self):
        # The CLI/engine JSON path needs the typed error, and it must
        # stay a ValueError for pre-existing callers.
        with pytest.raises(ConfigurationError):
            CostParams(dac_energy_pj=-0.1)
        assert issubclass(ConfigurationError, ValueError)

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError):
            CostParams(cycle_time_ns="fast")
        with pytest.raises(ConfigurationError):
            CostParams(adc_energy_pj=True)

    def test_custom_values(self):
        params = CostParams(cycle_time_ns=50.0, adc_energy_pj=1.0)
        assert params.cycle_time_ns == 50.0


class TestCostParamsDictRoundTrip:
    def test_round_trip_identity(self):
        params = CostParams(cycle_time_ns=42.0, adc_energy_pj=3.5,
                            include_writes=True,
                            idle_column_conversion=False)
        assert CostParams.from_dict(params.to_dict()) == params

    def test_to_dict_carries_every_field(self):
        payload = CostParams().to_dict()
        assert set(payload) == {
            "cycle_time_ns", "adc_energy_pj", "dac_energy_pj",
            "cell_energy_pj", "write_energy_pj", "include_writes",
            "idle_column_conversion"}

    def test_partial_dict_keeps_defaults(self):
        params = CostParams.from_dict({"adc_energy_pj": 1.25})
        assert params.adc_energy_pj == 1.25
        assert params.cycle_time_ns == CostParams().cycle_time_ns

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            CostParams.from_dict({"adc_energy": 1.0})

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            CostParams.from_dict({"write_energy_pj": -5.0})

    def test_non_boolean_flag_rejected(self):
        with pytest.raises(ConfigurationError):
            CostParams.from_dict({"include_writes": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            CostParams.from_dict([("adc_energy_pj", 1.0)])


class TestCostReport:
    def test_latency_is_cycles_times_period(self, resnet_l4, array512):
        sol = solve(resnet_l4, array512, "vw-sdk")
        rep = cost_report(sol, CostParams(cycle_time_ns=100.0))
        assert rep.latency_us == pytest.approx(sol.cycles * 0.1)

    def test_adc_energy_counts_used_columns_when_opted(self):
        layer = ConvLayer.square(8, 3, 4, 4)
        sol = im2col_solution(layer, PIMArray(64, 16))
        params = CostParams(adc_energy_pj=1.0, dac_energy_pj=0.0,
                            cell_energy_pj=0.0, idle_column_conversion=False)
        rep = cost_report(sol, params)
        # 36 windows x 4 used columns x 1 pJ = 144 pJ = 0.144 nJ.
        assert rep.adc_energy_nj == pytest.approx(0.144)

    def test_adc_energy_scans_whole_array_by_default(self):
        # The paper's model: the ADC bank digitises all columns every
        # cycle, so conversion energy is proportional to cycles.
        layer = ConvLayer.square(8, 3, 4, 4)
        sol = im2col_solution(layer, PIMArray(64, 16))
        params = CostParams(adc_energy_pj=1.0, dac_energy_pj=0.0,
                            cell_energy_pj=0.0)
        rep = cost_report(sol, params)
        assert rep.adc_energy_nj == pytest.approx(36 * 16 / 1000.0)

    def test_dac_energy_counts_rows(self):
        layer = ConvLayer.square(8, 3, 4, 4)
        sol = im2col_solution(layer, PIMArray(64, 16))
        params = CostParams(adc_energy_pj=0.0, dac_energy_pj=1.0,
                            cell_energy_pj=0.0)
        rep = cost_report(sol, params)
        assert rep.dac_energy_nj == pytest.approx(36 * 36 / 1000.0)

    def test_conversion_fraction_dominates_by_default(self, resnet_l4,
                                                      array512):
        rep = cost_report(solve(resnet_l4, array512, "vw-sdk"))
        assert rep.conversion_fraction > 0.5

    def test_write_energy_excluded_by_default(self, resnet_l4, array512):
        rep = cost_report(solve(resnet_l4, array512, "vw-sdk"))
        assert rep.total_energy_nj == pytest.approx(rep.compute_energy_nj)

    def test_write_energy_included_when_enabled(self, resnet_l4, array512):
        params = CostParams(include_writes=True)
        rep = cost_report(solve(resnet_l4, array512, "vw-sdk"), params)
        assert rep.total_energy_nj > rep.compute_energy_nj

    def test_breakdown_keys(self, resnet_l4, array512):
        rep = cost_report(solve(resnet_l4, array512, "vw-sdk"))
        assert set(rep.energy_breakdown()) == {"adc", "dac", "cell", "write"}

    def test_vwsdk_cheaper_than_im2col(self, resnet_l4, array512):
        base = cost_report(solve(resnet_l4, array512, "im2col"))
        ours = cost_report(solve(resnet_l4, array512, "vw-sdk"))
        assert ours.latency_us < base.latency_us
        assert ours.adc_energy_nj < base.adc_energy_nj

    def test_energy_ratio_tracks_cycle_ratio_loosely(self, resnet_l4,
                                                     array512):
        # Conversions dominate, so energy ratio should be within ~2x of
        # the cycle ratio (not exact: per-cycle activity differs).
        base = cost_report(solve(resnet_l4, array512, "im2col"))
        ours = cost_report(solve(resnet_l4, array512, "vw-sdk"))
        cycle_ratio = base.cycles / ours.cycles
        energy_ratio = base.total_energy_nj / ours.total_energy_nj
        assert energy_ratio > cycle_ratio / 3
